// Lease-based multi-pool dispatch with work stealing: N supervisor pools —
// separate processes, optionally separate hosts — drive one sharded sweep
// through nothing but a shared directory.
//
// Layout of a sweep directory:
//
//   sweep.meta            sealed VBRSWPL1 header for shard 0 (identity
//                         witness: every pool verifies its grid against it)
//   shard_NNNN.log        per-shard VBRSWPL1 append-only result log
//   shard_NNNN.done       completion marker (shard fingerprint, hex)
//   leases/shard_NNNN.lease   current owner's claim token
//
// The lease protocol needs only POSIX file atomicity, so it works across
// hosts over a shared filesystem:
//
//   claim:     write a unique token file, link() it to the lease path —
//              atomic and exclusive, EEXIST means another pool holds it
//   heartbeat: re-read the lease; if it still carries our token, bump its
//              mtime. A token swap means the shard was stolen from us:
//              stop appending, let the thief replay.
//   steal:     a lease whose mtime is older than ttl_seconds belongs to a
//              dead pool (SIGKILL leaves no release); rename() our token
//              over it — atomic replace — then read back to see who won.
//   release:   unlink after the done marker is written.
//
// A stolen shard is *replayed from its log prefix*: the thief recovers the
// dead pool's log (truncating any torn tail), salvages every settled cell,
// and appends only the remainder. Two pools briefly appending the same
// shard — a stale-lease race or an injected duplicate claim — is healed by
// design: appends are whole-frame O_APPEND writes of deterministic record
// bytes, so the overlap is byte-identical duplicates the scan collapses.
//
// PoolFaultPlan is the crash-soak seam: a pool can be told to SIGKILL
// itself mid-shard (optionally leaving a torn tail), or to claim a shard
// it has no right to. collect_sweep() then proves the point: whatever the
// fault schedule, the merged records hash bit-identically to a single-pool
// fault-free sweep.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "vbr/sweep/shard.hpp"
#include "vbr/sweep/supervisor.hpp"

namespace vbr::sweep {

/// Lease timing. ttl_seconds is how stale a lease must be before another
/// pool may steal it; heartbeat_seconds is how often a working pool
/// freshens its claim (must be well under ttl).
struct LeaseConfig {
  double ttl_seconds = 30.0;
  double heartbeat_seconds = 5.0;
};

/// Seeded pool-level fault injection (the soak seam). Worker-level faults
/// (crash/hang/OOM/poison) stay in SweepFaultPlan; these kill the *pool*.
struct PoolFaultPlan {
  /// SIGKILL this pool after it has appended this many records (0 = never).
  std::uint64_t kill_after_records = 0;
  /// Before dying, append a garbage partial frame — the torn tail a crash
  /// mid-write would leave — so recovery has something to truncate.
  bool torn_tail_on_kill = false;
  /// Claim one shard while ignoring a fresh foreign lease (the duplicate-
  /// claim race); the overlap must heal to byte-identical duplicates.
  bool duplicate_claim = false;
};

struct PoolOptions {
  /// The shared sweep directory (created if missing).
  std::filesystem::path sweep_dir;
  SweepGrid grid;
  std::uint64_t shard_count = 1;
  /// Label baked into lease tokens (diagnostics; uniqueness comes from
  /// pid + a per-claim counter). Defaults to "pool-<pid>".
  std::string pool_id;
  LeaseConfig lease;
  SweepLimits limits;
  SweepFaultPlan faults;
  PoolFaultPlan pool_faults;
  /// fsync log appends and lease writes.
  bool durable = false;
  /// Per-record progress hook (settling order, this pool's shards only).
  std::function<void(const CellRecord&)> on_cell_settled;
};

struct PoolReport {
  std::size_t shards_completed = 0;  ///< shards this pool finished
  std::size_t shards_stolen = 0;     ///< claims taken from an expired lease
  std::size_t cells_settled = 0;     ///< records this pool appended
  std::size_t cells_salvaged = 0;    ///< records replayed from log prefixes
  std::size_t retried_attempts = 0;
  std::size_t lost_leases = 0;       ///< shards abandoned mid-run to a thief
  bool sweep_complete = false;       ///< every shard done when we stopped
};

/// Run one pool to completion: claim shards, settle their cells into the
/// per-shard logs, steal stale leases, stop when every shard is done.
/// Safe to run concurrently from any number of processes on one sweep_dir.
PoolReport run_pool(const PoolOptions& options);

struct MultiPoolReport {
  std::size_t pools = 0;
  std::size_t pools_failed = 0;  ///< nonzero exit or fatal signal
  bool sweep_complete = false;
};

/// Fork `pool_count` pools over one sweep directory and wait for them.
/// `plan_for_pool` (optional) assigns each pool index its fault plan — the
/// soak harness kills pool 0 mid-shard and lets 1..N-1 steal the wreckage.
/// An injected pool death makes the sweep report incomplete only if every
/// survivor also died; callers re-invoke (or resume) to finish.
MultiPoolReport run_pools(const PoolOptions& base, std::size_t pool_count,
                          const std::function<PoolFaultPlan(std::size_t)>&
                              plan_for_pool = {});

/// Merge every shard log in the directory into one SweepReport whose
/// records and results_hash are bit-identical to a single-pool fault-free
/// run_sweep over the same grid. With `require_complete`, throws if any
/// cell is still unsettled. Read-only: logs are scanned, not healed.
SweepReport collect_sweep(const std::filesystem::path& sweep_dir,
                          const SweepGrid& grid, std::uint64_t shard_count,
                          bool require_complete = true);

/// --- lease primitives, exposed for tests and the soak harness ---

enum class LeaseClaim {
  kClaimed,  ///< fresh claim: the lease did not exist
  kStolen,   ///< replaced a lease staler than ttl
  kHeld,     ///< another pool holds a fresh lease (or won the steal race)
};

/// Attempt to claim `lease_path` with `token`. `steal_stale` permits
/// replacing a lease whose mtime is older than ttl; `ignore_fresh` is the
/// injected duplicate-claim fault (treat a fresh lease as stale).
LeaseClaim claim_lease(const std::filesystem::path& lease_path,
                       const std::string& token, double ttl_seconds,
                       bool steal_stale, bool ignore_fresh = false);

/// Freshen our claim's mtime. Returns false — stop working the shard — if
/// the lease no longer carries `token` (stolen) or vanished.
bool heartbeat_lease(const std::filesystem::path& lease_path,
                     const std::string& token);

/// Drop the lease iff it still carries `token`.
void release_lease(const std::filesystem::path& lease_path,
                   const std::string& token);

/// Paths inside a sweep directory (shared with the soak harness).
std::filesystem::path shard_log_path(const std::filesystem::path& sweep_dir,
                                     std::uint64_t shard_index);
std::filesystem::path shard_done_path(const std::filesystem::path& sweep_dir,
                                      std::uint64_t shard_index);
std::filesystem::path shard_lease_path(const std::filesystem::path& sweep_dir,
                                       std::uint64_t shard_index);

}  // namespace vbr::sweep
