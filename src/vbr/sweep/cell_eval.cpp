#include "vbr/sweep/cell_eval.hpp"

#include <istream>
#include <ostream>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/common/serialize.hpp"
#include "vbr/engine/engine.hpp"
#include "vbr/net/cell_queue.hpp"
#include "vbr/net/fbm_queue.hpp"
#include "vbr/net/fluid_queue.hpp"

namespace vbr::sweep {

namespace {

/// Frame interval of the paper's 24 fps material.
constexpr double kDtSeconds = 1.0 / 24.0;

/// Target overflow probability for the fBm required-capacity field (the
/// epsilon regime of the paper's QOS targets).
constexpr double kFbmEpsilon = 1e-6;

/// The paper's Table 2/3 operating point (Star Wars fit); every cell shares
/// the marginal and differs only by the grid's Hurst parameter.
model::VbrModelParams cell_model_params(double hurst) {
  model::VbrModelParams params;
  params.marginal.mu_gamma = 27791.0;
  params.marginal.sigma_gamma = 6254.0;
  params.marginal.tail_slope = 12.0;
  params.hurst = hurst;
  return params;
}

}  // namespace

CellResult evaluate_cell(const CellSpec& spec) {
  VBR_ENSURE(spec.num_sources >= 1, "cell needs at least one source");
  VBR_ENSURE(spec.frames_per_source >= 2, "cell needs at least two frames");
  VBR_CHECK_FINITE(spec.utilization, "cell utilization");
  VBR_ENSURE(spec.utilization > 0.0, "cell utilization must be positive");
  VBR_ENSURE(spec.buffer_delay_ms >= 0.0, "cell buffer delay must be non-negative");

  // Workers are forked children: generation stays single-threaded so a cell
  // never depends on thread scheduling and never spawns threads post-fork.
  engine::GenerationPlan plan;
  plan.num_sources = spec.num_sources;
  plan.frames_per_source = spec.frames_per_source;
  plan.seed = spec.seed;
  plan.params = cell_model_params(spec.hurst);
  plan.threads = 1;
  const engine::MultiSourceTrace trace = engine::generate_sources(plan);
  const std::vector<double> aggregate = trace.aggregate();
  check_finite_series(aggregate, "sweep cell aggregate traffic");

  CellResult result;
  const double mean_bytes = sample_mean(aggregate);
  VBR_ENSURE(mean_bytes > 0.0, "cell traffic has zero mean rate");
  const double capacity_bytes_per_sec = mean_bytes / kDtSeconds / spec.utilization;
  result.mean_rate_bps = mean_bytes * 8.0 / kDtSeconds;
  result.capacity_bps = capacity_bytes_per_sec * 8.0;
  result.buffer_bytes = spec.buffer_delay_ms * 1e-3 * capacity_bytes_per_sec;

  switch (spec.queue) {
    case QueueKind::kFluid: {
      const net::FluidQueueResult fluid = net::run_fluid_queue(
          aggregate, kDtSeconds, capacity_bytes_per_sec, result.buffer_bytes);
      result.loss_rate = fluid.loss_rate();
      result.mean_queue_bytes = fluid.mean_queue_bytes;
      result.max_queue_bytes = fluid.max_queue_bytes;
      break;
    }
    case QueueKind::kCell: {
      // Uniform spacing keeps the discrete queue deterministic; the Rng is
      // still threaded through for the random-spacing variant's signature.
      Rng rng(spec.seed);
      const net::CellQueueResult cells = net::run_cell_queue(
          aggregate, kDtSeconds, capacity_bytes_per_sec, result.buffer_bytes,
          net::CellSpacing::kUniform, rng);
      result.loss_rate = cells.loss_rate();
      break;
    }
    case QueueKind::kFbm: {
      const net::FbmTrafficParams traffic = net::fit_fbm_traffic(aggregate, spec.hurst);
      const double capacity_per_interval = capacity_bytes_per_sec * kDtSeconds;
      result.overflow_probability = net::fbm_overflow_probability(
          traffic, capacity_per_interval, result.buffer_bytes);
      result.loss_rate = result.overflow_probability;
      // The closed form needs b > 0 and c > m; report 0 (not applicable)
      // for a zero buffer or an overloaded cell instead of throwing.
      if (result.buffer_bytes > 0.0 && spec.utilization < 1.0) {
        result.required_capacity_bps =
            net::fbm_required_capacity(traffic, result.buffer_bytes, kFbmEpsilon) *
            8.0 / kDtSeconds;
      }
      break;
    }
  }

  VBR_CHECK_FINITE(result.loss_rate, "cell loss rate");
  VBR_CHECK_PROB(result.loss_rate, "cell loss rate");
  VBR_CHECK_FINITE(result.mean_queue_bytes, "cell mean queue");
  VBR_CHECK_FINITE(result.max_queue_bytes, "cell max queue");
  VBR_CHECK_FINITE(result.required_capacity_bps, "cell required capacity");
  return result;
}

void write_cell_result(std::ostream& out, const CellResult& result) {
  io::write_f64(out, result.mean_rate_bps);
  io::write_f64(out, result.capacity_bps);
  io::write_f64(out, result.buffer_bytes);
  io::write_f64(out, result.loss_rate);
  io::write_f64(out, result.mean_queue_bytes);
  io::write_f64(out, result.max_queue_bytes);
  io::write_f64(out, result.overflow_probability);
  io::write_f64(out, result.required_capacity_bps);
}

CellResult read_cell_result(std::istream& in, const char* what) {
  CellResult result;
  result.mean_rate_bps = io::read_f64(in, what);
  result.capacity_bps = io::read_f64(in, what);
  result.buffer_bytes = io::read_f64(in, what);
  result.loss_rate = io::read_f64(in, what);
  result.mean_queue_bytes = io::read_f64(in, what);
  result.max_queue_bytes = io::read_f64(in, what);
  result.overflow_probability = io::read_f64(in, what);
  result.required_capacity_bps = io::read_f64(in, what);
  return result;
}

}  // namespace vbr::sweep
