#include "vbr/sweep/sweep_plan.hpp"

#include <cmath>
#include <cstring>

#include "vbr/common/checksum.hpp"
#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"

namespace vbr::sweep {

const char* queue_kind_name(QueueKind kind) {
  switch (kind) {
    case QueueKind::kFluid: return "fluid";
    case QueueKind::kCell: return "cell";
    case QueueKind::kFbm: return "fbm";
  }
  return "unknown";
}

QueueKind parse_queue_kind(const std::string& name) {
  if (name == "fluid") return QueueKind::kFluid;
  if (name == "cell") return QueueKind::kCell;
  if (name == "fbm") return QueueKind::kFbm;
  throw InvalidArgument("unknown queue kind '" + name + "' (expected fluid|cell|fbm)");
}

void SweepGrid::validate() const {
  VBR_ENSURE(!queues.empty(), "sweep grid needs at least one queue kind");
  VBR_ENSURE(!hursts.empty(), "sweep grid needs at least one Hurst value");
  VBR_ENSURE(!utilizations.empty(), "sweep grid needs at least one utilization");
  VBR_ENSURE(!buffer_ms.empty(), "sweep grid needs at least one buffer delay");
  VBR_ENSURE(!sources.empty(), "sweep grid needs at least one source count");
  VBR_ENSURE(frames_per_source >= 2, "sweep cells need at least two frames per source");
  for (const double h : hursts) {
    VBR_CHECK_FINITE(h, "sweep Hurst value");
    VBR_ENSURE(h > 0.5 && h < 1.0, "sweep Hurst values must lie in (0.5, 1)");
  }
  for (const double u : utilizations) {
    VBR_CHECK_FINITE(u, "sweep utilization");
    VBR_ENSURE(u > 0.0, "sweep utilizations must be positive");
  }
  for (const double b : buffer_ms) {
    VBR_CHECK_FINITE(b, "sweep buffer delay");
    VBR_ENSURE(b >= 0.0, "sweep buffer delays must be non-negative");
  }
  for (const std::size_t n : sources) {
    VBR_ENSURE(n >= 1, "sweep source counts must be at least one");
  }
}

std::size_t cell_count(const SweepGrid& grid) {
  return grid.queues.size() * grid.hursts.size() * grid.utilizations.size() *
         grid.buffer_ms.size() * grid.sources.size();
}

CellSpec cell_at(const SweepGrid& grid, std::size_t index) {
  grid.validate();
  VBR_ENSURE(index < cell_count(grid), "sweep cell index out of range");
  CellSpec spec;
  spec.cell_index = index;
  // Row-major: sources fastest, queues slowest.
  std::size_t rest = index;
  spec.num_sources = grid.sources[rest % grid.sources.size()];
  rest /= grid.sources.size();
  spec.buffer_delay_ms = grid.buffer_ms[rest % grid.buffer_ms.size()];
  rest /= grid.buffer_ms.size();
  spec.utilization = grid.utilizations[rest % grid.utilizations.size()];
  rest /= grid.utilizations.size();
  spec.hurst = grid.hursts[rest % grid.hursts.size()];
  rest /= grid.hursts.size();
  spec.queue = grid.queues[rest];
  spec.frames_per_source = grid.frames_per_source;
  return spec;
}

std::vector<std::uint64_t> derive_cell_seeds(const SweepGrid& grid) {
  const std::size_t cells = cell_count(grid);
  Rng master(grid.seed);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(cells);
  for (std::size_t i = 0; i < cells; ++i) seeds.push_back(master.split()());
  return seeds;
}

std::uint64_t sweep_fingerprint(const SweepGrid& grid) {
  Fnv1a h;
  const auto put_u64 = [&](std::uint64_t v) { h.update(&v, sizeof v); };
  const auto put_f64 = [&](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(bits);
  };
  put_u64(grid.queues.size());
  for (const QueueKind q : grid.queues) put_u64(static_cast<std::uint64_t>(q));
  put_u64(grid.hursts.size());
  for (const double v : grid.hursts) put_f64(v);
  put_u64(grid.utilizations.size());
  for (const double v : grid.utilizations) put_f64(v);
  put_u64(grid.buffer_ms.size());
  for (const double v : grid.buffer_ms) put_f64(v);
  put_u64(grid.sources.size());
  for (const std::size_t v : grid.sources) put_u64(v);
  put_u64(grid.frames_per_source);
  put_u64(grid.seed);
  return h.digest();
}

}  // namespace vbr::sweep
