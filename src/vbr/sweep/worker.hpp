// The worker half of the process-isolated sweep: what runs inside the fork.
//
// The supervisor forks one worker per cell attempt; the child applies its
// resource ceilings (setrlimit), evaluates the cell, and reports back over
// a pipe with a single CRC-framed message, then _exit()s without touching
// the parent's stdio buffers or static destructors. Anything else the
// parent observes — a nonzero exit, a fatal signal, a torn frame, silence
// past the watchdog deadline — is classified as crash/hang/OOM from the
// exit status and rusage.
//
// Frame format (child -> parent):
//
//   8 bytes  magic "VBRWRKR1"
//   u64      payload size
//   u32      CRC-32 of the payload
//   payload  u8 tag (0 = result, 1 = failure)
//            result:  CellResult (8 raw f64 bit patterns)
//            failure: u32 FailureKind + length-prefixed message
//
// A failure frame is the *structured* error path: the worker computed to a
// deterministic vbr::Error (poison cell) or caught bad_alloc under its
// memory ceiling, and says so explicitly instead of dying. The supervisor
// quarantines deterministic errors immediately and retries OOM reports.
//
// InjectedFault is the seeded fault-injection seam the soak harness and the
// tests drive: a worker told to crash/hang/OOM does so through the same
// code paths a real failure would take (abort(), pause() loop, genuine
// allocation failure under RLIMIT_AS).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "vbr/sweep/cell_eval.hpp"
#include "vbr/sweep/manifest.hpp"

namespace vbr::sweep {

inline constexpr std::array<char, 8> kWorkerMagic = {'V', 'B', 'R', 'W',
                                                     'R', 'K', 'R', '1'};

/// Hard bound on a worker frame; anything larger is a protocol violation.
inline constexpr std::size_t kMaxWorkerFrame = std::size_t{1} << 16;

/// Per-attempt resource ceilings applied inside the child via setrlimit.
/// Zero disables the respective ceiling. The watchdog deadline is enforced
/// by the *parent* (poll timeout then SIGKILL); the CPU ceiling is the
/// kernel-side backstop (SIGXCPU) for a worker that spins without blocking.
struct WorkerLimits {
  double deadline_seconds = 60.0;
  std::uint64_t memory_bytes = 0;  ///< RLIMIT_AS
  std::uint64_t cpu_seconds = 0;   ///< RLIMIT_CPU
};

/// Seeded fault injected into a worker attempt (see supervisor.hpp).
enum class InjectedFault : std::uint32_t {
  kNone = 0,
  kCrash = 1,   ///< abort() before computing
  kHang = 2,    ///< block forever; the watchdog must fire
  kOom = 3,     ///< allocate until the memory ceiling kills the attempt
  kPoison = 4,  ///< deterministic NumericalError (permanent, quarantines)
};

/// Child-side entry point: apply ceilings, honor the injected fault,
/// evaluate the cell, write one frame to `result_fd`, and _exit. Never
/// returns; never runs parent-owned destructors.
[[noreturn]] void run_worker(int result_fd, const CellSpec& spec,
                             const WorkerLimits& limits, InjectedFault fault);

/// Frame builders (also used by tests to forge protocol inputs).
std::string encode_worker_result(const CellResult& result);
std::string encode_worker_failure(FailureKind kind, std::string_view message);

/// A parsed worker frame.
struct WorkerMessage {
  bool is_result = false;
  CellResult result;               ///< valid when is_result
  FailureKind kind = FailureKind::kError;  ///< valid when !is_result
  std::string message;             ///< valid when !is_result
};

/// Parse one complete frame. Throws vbr::IoError on bad magic, size/CRC
/// mismatch, truncation, unknown tag, or trailing bytes.
WorkerMessage parse_worker_message(std::string_view bytes);

}  // namespace vbr::sweep
