#include "vbr/sweep/worker.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <new>
#include <sstream>
#include <vector>

#include "vbr/common/checksum.hpp"
#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"

// ASan reserves terabytes of shadow address space, so an honest RLIMIT_AS
// ceiling would kill every attempt — clean retries included. Sanitizer
// builds skip the ceiling and simulate the allocation failure instead; the
// OOM *protocol* (structured frame, retry classification) is still real.
#if defined(__SANITIZE_ADDRESS__)
#define VBR_SWEEP_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VBR_SWEEP_UNDER_ASAN 1
#endif
#endif
#ifndef VBR_SWEEP_UNDER_ASAN
#define VBR_SWEEP_UNDER_ASAN 0
#endif

namespace vbr::sweep {

namespace {

constexpr std::uint64_t kMaxFailureMessage = 4096;

/// Frame = magic + u64 size + u32 crc + payload.
std::string frame_payload(std::string_view payload) {
  std::ostringstream out(std::ios::binary);
  io::write_bytes(out, kWorkerMagic.data(), kWorkerMagic.size());
  io::write_u64(out, payload.size());
  io::write_u32(out, crc32(payload.data(), payload.size()));
  if (!payload.empty()) io::write_bytes(out, payload.data(), payload.size());
  return out.str();
}

/// write(2) the whole buffer; on an unrecoverable pipe error the child has
/// no way to report anything, so it exits with a distinctive code the
/// parent classifies as a crash.
void write_all_or_die(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::_exit(121);
    }
    off += static_cast<std::size_t>(n);
  }
}

void apply_rlimit(int resource, std::uint64_t value) {
  rlimit limit{};
  limit.rlim_cur = static_cast<rlim_t>(value);
  limit.rlim_max = static_cast<rlim_t>(value);
  // Best effort: a refused limit degrades to the parent's watchdog.
  (void)::setrlimit(resource, &limit);
}

void apply_limits(const WorkerLimits& limits) {
  apply_rlimit(RLIMIT_CORE, 0);  // a crashing worker must not litter cores
  if (limits.memory_bytes > 0 && !VBR_SWEEP_UNDER_ASAN) {
    apply_rlimit(RLIMIT_AS, limits.memory_bytes);
  }
  if (limits.cpu_seconds > 0) apply_rlimit(RLIMIT_CPU, limits.cpu_seconds);
}

/// Genuine allocation pressure: grab 16 MiB chunks until the address-space
/// ceiling refuses one. Bounded so a misconfigured run without a ceiling
/// gives up instead of eating the host.
[[noreturn]] void swallow_memory() {
#if VBR_SWEEP_UNDER_ASAN
  throw std::bad_alloc();  // no enforceable ceiling under ASan; simulate
#else
  constexpr std::size_t kChunk = std::size_t{16} << 20;
  constexpr std::size_t kMaxChunks = 4096;  // 64 GiB: far past any ceiling
  std::vector<std::vector<char>> hoard;
  for (std::size_t i = 0; i < kMaxChunks; ++i) {
    hoard.emplace_back(kChunk, static_cast<char>(i));
  }
  throw std::bad_alloc();  // no ceiling stopped us; simulate the failure
#endif
}

}  // namespace

std::string encode_worker_result(const CellResult& result) {
  std::ostringstream payload(std::ios::binary);
  io::write_u8(payload, 0);
  write_cell_result(payload, result);
  return frame_payload(payload.str());
}

std::string encode_worker_failure(FailureKind kind, std::string_view message) {
  std::ostringstream payload(std::ios::binary);
  io::write_u8(payload, 1);
  io::write_u32(payload, static_cast<std::uint32_t>(kind));
  std::string bounded(message.substr(0, kMaxFailureMessage));
  io::write_string(payload, bounded);
  return frame_payload(payload.str());
}

WorkerMessage parse_worker_message(std::string_view bytes) {
  const char* what = "worker frame";
  std::istringstream in(std::string(bytes), std::ios::binary);

  std::array<char, 8> magic{};
  io::read_bytes(in, magic.data(), magic.size(), what);
  if (std::memcmp(magic.data(), kWorkerMagic.data(), magic.size()) != 0) {
    throw IoError("worker frame: bad magic");
  }
  const std::uint64_t size = io::read_u64(in, what);
  if (size > kMaxWorkerFrame) {
    throw IoError("worker frame: implausible payload size " + std::to_string(size));
  }
  const std::uint32_t expected_crc = io::read_u32(in, what);
  std::string payload(static_cast<std::size_t>(size), '\0');
  if (!payload.empty()) io::read_bytes(in, payload.data(), payload.size(), what);
  if (in.peek() != std::char_traits<char>::eof()) {
    throw IoError("worker frame: trailing bytes");
  }
  if (crc32(payload.data(), payload.size()) != expected_crc) {
    throw IoError("worker frame: CRC mismatch");
  }

  std::istringstream body(payload, std::ios::binary);
  WorkerMessage message;
  const std::uint8_t tag = io::read_u8(body, what);
  if (tag == 0) {
    message.is_result = true;
    message.result = read_cell_result(body, what);
  } else if (tag == 1) {
    message.is_result = false;
    const std::uint32_t kind = io::read_u32(body, what);
    if (kind < static_cast<std::uint32_t>(FailureKind::kCrash) ||
        kind > static_cast<std::uint32_t>(FailureKind::kError)) {
      throw IoError("worker frame: failure kind out of range");
    }
    message.kind = static_cast<FailureKind>(kind);
    message.message = io::read_string(body, kMaxFailureMessage, what);
  } else {
    throw IoError("worker frame: unknown tag " + std::to_string(tag));
  }
  if (body.peek() != std::char_traits<char>::eof()) {
    throw IoError("worker frame: payload has trailing bytes");
  }
  return message;
}

void run_worker(int result_fd, const CellSpec& spec, const WorkerLimits& limits,
                InjectedFault fault) {
  apply_limits(limits);

  if (fault == InjectedFault::kCrash) std::abort();
  if (fault == InjectedFault::kHang) {
    for (;;) ::pause();  // the parent's watchdog must SIGKILL us
  }

  try {
    if (fault == InjectedFault::kPoison) {
      throw NumericalError("injected poison cell (deterministic failure)");
    }
    if (fault == InjectedFault::kOom) swallow_memory();
    const CellResult result = evaluate_cell(spec);
    write_all_or_die(result_fd, encode_worker_result(result));
  } catch (const std::bad_alloc&) {
    // The hoard (or the cell's own working set) hit the memory ceiling; the
    // unwound stack freed it, so this small frame still fits.
    write_all_or_die(result_fd,
                     encode_worker_failure(FailureKind::kOom,
                                           "allocation failed under the memory ceiling"));
  } catch (const Error& e) {
    write_all_or_die(result_fd, encode_worker_failure(FailureKind::kError, e.what()));
  } catch (const std::exception& e) {
    write_all_or_die(result_fd, encode_worker_failure(FailureKind::kError, e.what()));
  }
  // _exit, not exit: the child shares the parent's stdio buffers and static
  // state; flushing or destroying them here would corrupt the supervisor.
  ::_exit(0);
}

}  // namespace vbr::sweep
