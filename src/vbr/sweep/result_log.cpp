#include "vbr/sweep/result_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"
#include "vbr/run/envelope.hpp"

namespace vbr::sweep {

namespace {

/// Hard bound on one framed record payload. A settled record is at most
/// index + status + failure header + bounded message/stderr strings, well
/// under this; a larger size field is a torn or forged frame header.
constexpr std::uint64_t kMaxRecordPayload = std::uint64_t{1} << 16;

run::EnvelopeSpec log_envelope() {
  return {kResultLogMagic, kResultLogVersion, kLogHeaderPayloadBytes,
          "sweep result log"};
}

std::string hex16(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

ResultLogHeader parse_log_header(const std::string& body, const std::string& name) {
  const char* what = name.c_str();
  std::istringstream payload(body, std::ios::binary);
  ResultLogHeader header;
  header.sweep_fingerprint = io::read_u64(payload, what);
  header.shard_fingerprint = io::read_u64(payload, what);
  header.total_cells = io::read_u64(payload, what);
  header.shard_count = io::read_u64(payload, what);
  header.shard_index = io::read_u64(payload, what);
  header.first_cell = io::read_u64(payload, what);
  header.end_cell = io::read_u64(payload, what);
  if (header.total_cells == 0 || header.total_cells > kMaxSweepCells) {
    throw IoError(name + ": implausible sweep cell count " +
                  std::to_string(header.total_cells));
  }
  if (header.shard_count == 0 || header.shard_index >= header.shard_count) {
    throw IoError(name + ": result log shard index " +
                  std::to_string(header.shard_index) + " out of range for " +
                  std::to_string(header.shard_count) + " shards");
  }
  if (header.first_cell > header.end_cell ||
      header.end_cell > header.total_cells) {
    throw IoError(name + ": result log cell range [" +
                  std::to_string(header.first_cell) + ", " +
                  std::to_string(header.end_cell) + ") out of bounds");
  }
  return header;
}

/// Fail fast and loudly on a log that belongs to a different sweep or
/// shard: the error names BOTH fingerprints so an operator can tell an
/// edited grid from a misrouted shard file at a glance. Never re-seed.
void require_matching_header(const ResultLogHeader& header,
                             const ResultLogHeader& expected,
                             const std::string& name) {
  if (header.sweep_fingerprint != expected.sweep_fingerprint) {
    throw IoError(name + ": sweep fingerprint mismatch: grid expects " +
                  hex16(expected.sweep_fingerprint) + ", log carries " +
                  hex16(header.sweep_fingerprint) +
                  " (the log belongs to a different sweep grid)");
  }
  if (header.shard_fingerprint != expected.shard_fingerprint) {
    throw IoError(name + ": shard fingerprint mismatch: shard expects " +
                  hex16(expected.shard_fingerprint) + ", log carries " +
                  hex16(header.shard_fingerprint) +
                  " (the log belongs to a different shard plan)");
  }
  if (header != expected) {
    throw IoError(name + ": result log shape disagrees with the sweep plan");
  }
}

}  // namespace

std::string encode_log_header(const ResultLogHeader& header) {
  std::ostringstream payload(std::ios::binary);
  io::write_u64(payload, header.sweep_fingerprint);
  io::write_u64(payload, header.shard_fingerprint);
  io::write_u64(payload, header.total_cells);
  io::write_u64(payload, header.shard_count);
  io::write_u64(payload, header.shard_index);
  io::write_u64(payload, header.first_cell);
  io::write_u64(payload, header.end_cell);
  return run::seal_envelope(log_envelope(), payload.str());
}

ResultLogScan scan_result_log(std::istream& in, const std::string& name,
                              const ResultLogHeader* expected) {
  // Generic istreams cannot report "bytes remaining" after a failed framed
  // read, so measure the stream once up front and track offsets ourselves.
  in.seekg(0, std::ios::end);
  const auto stream_end = in.tellg();
  if (stream_end < 0) throw IoError(name + ": result log is not seekable");
  const std::uint64_t stream_size = static_cast<std::uint64_t>(stream_end);
  in.seekg(0, std::ios::beg);

  ResultLogScan scan;
  const std::string body = run::open_envelope_prefix(in, log_envelope(), name);
  scan.header = parse_log_header(body, name);
  if (expected != nullptr) require_matching_header(scan.header, *expected, name);
  scan.valid_bytes = kLogHeaderSealedBytes;

  std::map<std::uint64_t, CellRecord> settled;
  std::string payload;
  for (;;) {
    const run::RecordRead read = run::read_record(in, kMaxRecordPayload, payload);
    if (read != run::RecordRead::kRecord) break;
    std::istringstream record_stream(payload, std::ios::binary);
    CellRecord record = read_cell_record(record_stream, scan.header.total_cells, name);
    if (record_stream.peek() != std::char_traits<char>::eof()) {
      throw IoError(name + ": result log record has trailing bytes");
    }
    // A CRC-valid record is not a crash artifact, so its content is held to
    // the full contract: in this shard's range, and consistent with any
    // earlier record for the same cell. Byte-identical duplicates are the
    // legitimate trace of a healed duplicate claim or stolen lease (two
    // pools briefly appending the same deterministic cell) and collapse;
    // conflicting ones mean the "pure function of the spec" contract broke
    // and the log cannot be trusted.
    if (record.cell_index < scan.header.first_cell ||
        record.cell_index >= scan.header.end_cell) {
      throw IoError(name + ": result log cell " +
                    std::to_string(record.cell_index) +
                    " outside the shard range [" +
                    std::to_string(scan.header.first_cell) + ", " +
                    std::to_string(scan.header.end_cell) + ")");
    }
    const auto it = settled.find(record.cell_index);
    if (it != settled.end()) {
      const CellRecord& prior = it->second;
      const bool consistent =
          prior.status == record.status &&
          (record.status != CellStatus::kDone || prior.result == record.result);
      if (!consistent) {
        throw IoError(name + ": conflicting duplicate records for cell " +
                      std::to_string(record.cell_index));
      }
      scan.duplicate_records += 1;
    } else {
      settled.emplace(record.cell_index, std::move(record));
    }
    scan.valid_bytes += run::kRecordFrameBytes + payload.size();
  }

  scan.torn_bytes = stream_size - scan.valid_bytes;
  scan.records.reserve(settled.size());
  for (auto& [index, record] : settled) scan.records.push_back(std::move(record));
  return scan;
}

std::optional<ResultLogScan> recover_result_log(const std::filesystem::path& path,
                                                const ResultLogHeader& expected) {
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) return std::nullopt;  // no log yet: the caller starts fresh
  // A file shorter than the sealed header is an append torn inside the
  // header itself; no record can precede the header, so nothing settled is
  // lost by recreating. A *complete* header that fails its CRC or names a
  // different sweep is rejected below instead — recreating would silently
  // discard someone's settled cells.
  if (size < kLogHeaderSealedBytes) return std::nullopt;

  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open sweep result log: " + path.string());
  ResultLogScan scan = scan_result_log(in, path.string(), &expected);
  in.close();
  if (scan.torn_bytes > 0) {
    std::filesystem::resize_file(path, scan.valid_bytes, ec);
    if (ec) {
      throw IoError(path.string() + ": cannot truncate torn result log tail: " +
                    ec.message());
    }
    scan.torn_bytes = 0;
  }
  return scan;
}

namespace {

/// One whole frame per write(2) call: an append interrupted by SIGKILL
/// tears only the file tail, and concurrent appenders (a healed duplicate
/// claim) interleave at frame granularity under O_APPEND, never mid-frame.
void write_frame(int fd, std::string_view frame, const char* what) {
  const char* data = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string(what) + ": result log append failed: " +
                    std::strerror(errno));
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
}

}  // namespace

ResultLogWriter ResultLogWriter::create(const std::filesystem::path& path,
                                        const ResultLogHeader& header,
                                        bool durable) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    throw IoError("cannot create sweep result log: " + path.string() + ": " +
                  std::strerror(errno));
  }
  ResultLogWriter writer(fd, durable);
  const std::string sealed = encode_log_header(header);
  write_frame(fd, sealed, path.c_str());
  writer.bytes_written_ = sealed.size();
  if (durable) (void)::fsync(fd);
  return writer;
}

ResultLogWriter ResultLogWriter::append_to(const std::filesystem::path& path,
                                           const ResultLogScan& scan,
                                           bool durable) {
  (void)scan;  // the healthy prefix is already on disk; O_APPEND continues it
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    throw IoError("cannot open sweep result log for append: " + path.string() +
                  ": " + std::strerror(errno));
  }
  return ResultLogWriter(fd, durable);
}

ResultLogWriter::ResultLogWriter(ResultLogWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      durable_(other.durable_),
      bytes_written_(other.bytes_written_) {}

ResultLogWriter& ResultLogWriter::operator=(ResultLogWriter&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    durable_ = other.durable_;
    bytes_written_ = other.bytes_written_;
  }
  return *this;
}

ResultLogWriter::~ResultLogWriter() { close(); }

void ResultLogWriter::append(const CellRecord& record) {
  VBR_ENSURE(fd_ >= 0, "append to a closed sweep result log");
  std::ostringstream payload(std::ios::binary);
  write_cell_record(payload, record);
  const std::string frame = run::seal_record(payload.str());
  write_frame(fd_, frame, "sweep result log");
  bytes_written_ += frame.size();
  if (durable_) (void)::fsync(fd_);
}

void ResultLogWriter::close() {
  if (fd_ < 0) return;
  if (durable_) (void)::fsync(fd_);
  (void)::close(fd_);
  fd_ = -1;
}

}  // namespace vbr::sweep
