// One sweep cell = one §5 queueing experiment, evaluated to a fixed-size
// result record.
//
// evaluate_cell() is a pure function of the CellSpec: it synthesizes the
// cell's multi-source traffic from the spec's split-derived seed (paper
// Star Wars marginals, the spec's Hurst), sizes the channel from the
// realized aggregate mean rate and the spec's utilization, sizes the buffer
// from the buffer-delay budget, and runs the requested queue model. Running
// it twice — in-process, in a forked worker, or on a retry after a crash —
// produces bit-identical CellResult bytes; the supervisor's determinism
// guarantees are built entirely on this property.
//
// The serialized form is raw little-endian f64 bit patterns (vbr::io), so
// the manifest round-trips results at 0 ulp and the sweep soak can compare
// merged results byte-for-byte.
#pragma once

#include <iosfwd>
#include <string>

#include "vbr/sweep/sweep_plan.hpp"

namespace vbr::sweep {

/// Result of one evaluated cell. Queue-specific fields are zero when they
/// do not apply (overflow_probability / required_capacity_bps are fBm-only).
/// Every field is deterministic — no wall-clock or rusage diagnostics here;
/// those live in the manifest's failure/diagnostic records.
struct CellResult {
  double mean_rate_bps = 0.0;       ///< realized aggregate mean arrival rate
  double capacity_bps = 0.0;        ///< total service rate (mean / utilization)
  double buffer_bytes = 0.0;        ///< buffer sized from the delay budget
  double loss_rate = 0.0;           ///< overall loss (fluid/cell) or P(Q>b) (fBm)
  double mean_queue_bytes = 0.0;    ///< fluid only
  double max_queue_bytes = 0.0;     ///< fluid only
  double overflow_probability = 0.0;   ///< fBm only
  double required_capacity_bps = 0.0;  ///< fBm only, at epsilon = 1e-6

  bool operator==(const CellResult& other) const = default;
};

/// Evaluate one cell. Throws vbr::NumericalError / vbr::InvalidArgument on a
/// poisoned spec (the quarantine path); returns finite fields otherwise.
CellResult evaluate_cell(const CellSpec& spec);

/// Fixed-width serialization (8 f64 fields, vbr::io bit patterns).
void write_cell_result(std::ostream& out, const CellResult& result);
CellResult read_cell_result(std::istream& in, const char* what);

/// The serialized byte size of one CellResult.
inline constexpr std::size_t kCellResultBytes = 8 * sizeof(double);

}  // namespace vbr::sweep
