#include "vbr/sweep/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <optional>
#include <queue>
#include <thread>

#include "vbr/common/checksum.hpp"
#include "vbr/common/error.hpp"
#include "vbr/sweep/result_log.hpp"
#include "vbr/sweep/shard.hpp"

namespace vbr::sweep {

namespace {

constexpr std::size_t kStderrTailBytes = 4096;

/// One finished worker attempt, as the supervisor saw it.
struct AttemptOutcome {
  enum class Kind {
    kDone,     ///< valid result frame, clean exit
    kPoison,   ///< structured vbr::Error frame (deterministic; quarantine)
    kOom,      ///< structured OOM frame, or SIGKILL at the memory ceiling
    kHang,     ///< watchdog deadline or SIGXCPU
    kCrash,    ///< any other signal / nonzero exit / torn frame
  };
  Kind kind = Kind::kCrash;
  CellResult result;
  std::string message;
  std::int32_t exit_code = 0;
  std::int32_t term_signal = 0;
  std::uint64_t max_rss_kib = 0;
  double wall_seconds = 0.0;
  std::string stderr_tail;
};

FailureKind failure_kind_of(AttemptOutcome::Kind kind) {
  switch (kind) {
    case AttemptOutcome::Kind::kPoison: return FailureKind::kError;
    case AttemptOutcome::Kind::kOom: return FailureKind::kOom;
    case AttemptOutcome::Kind::kHang: return FailureKind::kHang;
    default: return FailureKind::kCrash;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Drain whatever is ready on `fd` into `buffer` (bounded). Returns false
/// once the peer closed (EOF).
bool drain_fd(int fd, std::string& buffer, std::size_t max_bytes) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n > 0) {
      const std::size_t keep = std::min(static_cast<std::size_t>(n),
                                        max_bytes > buffer.size()
                                            ? max_bytes - buffer.size()
                                            : std::size_t{0});
      buffer.append(chunk, keep);
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EINTR) continue;
    return true;  // EAGAIN: nothing more for now
  }
}

/// Keep only the last `max_bytes` of a rolling stderr capture.
void append_tail(std::string& tail, const char* data, std::size_t size,
                 std::size_t max_bytes) {
  tail.append(data, size);
  if (tail.size() > max_bytes) tail.erase(0, tail.size() - max_bytes);
}

bool drain_stderr(int fd, std::string& tail) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n > 0) {
      append_tail(tail, chunk, static_cast<std::size_t>(n), kStderrTailBytes);
      continue;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    return true;
  }
}

/// Fork one worker for `spec`, supervise it to completion, classify.
AttemptOutcome run_attempt(const CellSpec& spec, const WorkerLimits& limits,
                           InjectedFault fault) {
  int result_pipe[2] = {-1, -1};
  int stderr_pipe[2] = {-1, -1};
  if (::pipe(result_pipe) != 0) throw IoError("sweep: cannot create result pipe");
  if (::pipe(stderr_pipe) != 0) {
    ::close(result_pipe[0]);
    ::close(result_pipe[1]);
    throw IoError("sweep: cannot create stderr pipe");
  }

  // The child inherits stdio buffers; flush so it cannot replay them.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (int fd : {result_pipe[0], result_pipe[1], stderr_pipe[0], stderr_pipe[1]}) {
      ::close(fd);
    }
    throw IoError("sweep: fork failed: " + std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    ::close(result_pipe[0]);
    ::close(stderr_pipe[0]);
    (void)::dup2(stderr_pipe[1], STDERR_FILENO);
    ::close(stderr_pipe[1]);
    run_worker(result_pipe[1], spec, limits, fault);  // never returns
  }
  ::close(result_pipe[1]);
  ::close(stderr_pipe[1]);
  set_nonblocking(result_pipe[0]);
  set_nonblocking(stderr_pipe[0]);

  AttemptOutcome outcome;
  std::string frame;
  bool result_open = true;
  bool stderr_open = true;
  bool timed_out = false;
  const auto start = std::chrono::steady_clock::now();

  while (result_open || stderr_open) {
    int timeout_ms = -1;
    if (limits.deadline_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      const double remaining = limits.deadline_seconds - elapsed;
      if (remaining <= 0.0) {
        timed_out = true;
        break;
      }
      timeout_ms = static_cast<int>(std::ceil(remaining * 1000.0));
    }

    pollfd fds[2];
    nfds_t nfds = 0;
    if (result_open) fds[nfds++] = {result_pipe[0], POLLIN, 0};
    if (stderr_open) fds[nfds++] = {stderr_pipe[0], POLLIN, 0};
    const int rc = ::poll(fds, nfds, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      timed_out = true;  // cannot supervise: treat as a hang and reap
      break;
    }
    if (rc == 0) {
      timed_out = true;
      break;
    }
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (fds[i].fd == result_pipe[0]) {
        result_open = drain_fd(result_pipe[0], frame, kMaxWorkerFrame + 64);
      } else {
        stderr_open = drain_stderr(stderr_pipe[0], outcome.stderr_tail);
      }
    }
  }

  if (timed_out) (void)::kill(pid, SIGKILL);

  int status = 0;
  rusage usage{};
  while (::wait4(pid, &status, 0, &usage) < 0 && errno == EINTR) {
  }
  // Pick up anything written between the last poll and exit.
  if (result_open) drain_fd(result_pipe[0], frame, kMaxWorkerFrame + 64);
  if (stderr_open) drain_stderr(stderr_pipe[0], outcome.stderr_tail);
  ::close(result_pipe[0]);
  ::close(stderr_pipe[0]);

  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  outcome.max_rss_kib = static_cast<std::uint64_t>(
      usage.ru_maxrss > 0 ? usage.ru_maxrss : 0);  // Linux: KiB

  const bool exited = WIFEXITED(status);
  const bool signaled = WIFSIGNALED(status);
  outcome.exit_code = exited ? WEXITSTATUS(status) : 0;
  outcome.term_signal = signaled ? WTERMSIG(status) : 0;

  // A structured frame beats exit-status archaeology when both are present.
  if (!timed_out && !frame.empty()) {
    try {
      WorkerMessage message = parse_worker_message(frame);
      if (message.is_result && exited && outcome.exit_code == 0) {
        outcome.kind = AttemptOutcome::Kind::kDone;
        outcome.result = message.result;
        return outcome;
      }
      if (!message.is_result) {
        outcome.kind = message.kind == FailureKind::kOom
                           ? AttemptOutcome::Kind::kOom
                           : AttemptOutcome::Kind::kPoison;
        outcome.message = std::move(message.message);
        return outcome;
      }
    } catch (const IoError&) {
      // Torn frame: the worker died mid-write; fall through to the status.
    }
  }

  if (timed_out) {
    outcome.kind = AttemptOutcome::Kind::kHang;
    outcome.term_signal = SIGKILL;
    outcome.message = "watchdog deadline exceeded";
    return outcome;
  }
  if (signaled && outcome.term_signal == SIGXCPU) {
    outcome.kind = AttemptOutcome::Kind::kHang;
    outcome.message = "CPU ceiling exceeded (SIGXCPU)";
    return outcome;
  }
  if (signaled && outcome.term_signal == SIGKILL) {
    // The kernel OOM killer (or our RLIMIT_AS via a fatal path) SIGKILLs;
    // attribute it to memory when the worker died anywhere near the ceiling.
    outcome.kind = AttemptOutcome::Kind::kOom;
    outcome.message = "killed (peak RSS " + std::to_string(outcome.max_rss_kib) + " KiB)";
    return outcome;
  }
  outcome.kind = AttemptOutcome::Kind::kCrash;
  if (signaled) {
    outcome.message = "fatal signal " + std::to_string(outcome.term_signal);
  } else {
    outcome.message = "exit code " + std::to_string(outcome.exit_code);
  }
  return outcome;
}

/// The isolation-free attempt: evaluate in-process, classify exceptions the
/// way the worker protocol would. ~1 ms of fork/pipe overhead saved per
/// cell — the difference between hours and minutes at 10^5 cells — at the
/// cost of crash containment, which trusted specs don't need.
AttemptOutcome run_attempt_inprocess(const CellSpec& spec, InjectedFault fault) {
  AttemptOutcome outcome;
  const auto start = std::chrono::steady_clock::now();
  try {
    if (fault == InjectedFault::kPoison) {
      throw NumericalError("injected poison cell (deterministic failure)");
    }
    outcome.result = evaluate_cell(spec);
    outcome.kind = AttemptOutcome::Kind::kDone;
  } catch (const std::bad_alloc&) {
    outcome.kind = AttemptOutcome::Kind::kOom;
    outcome.message = "allocation failed evaluating in-process";
  } catch (const Error& e) {
    // A structured vbr::Error is the deterministic poison path, exactly as
    // a worker's failure frame would classify it.
    outcome.kind = AttemptOutcome::Kind::kPoison;
    outcome.message = e.what();
  } catch (const std::exception& e) {
    outcome.kind = AttemptOutcome::Kind::kCrash;
    outcome.message = e.what();
  }
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return outcome;
}

void validate_sweep_inputs(const SweepGrid& grid, const SweepLimits& limits,
                           const SweepFaultPlan& faults) {
  grid.validate();
  VBR_ENSURE(limits.max_attempts >= 1, "sweep needs at least one attempt");
  VBR_ENSURE(limits.backoff_seconds >= 0.0, "negative retry backoff");
  if (faults.rate > 0.0) {
    VBR_ENSURE(faults.rate <= 1.0, "fault rate must be a probability");
    VBR_ENSURE(limits.isolate || !(faults.crash || faults.hang || faults.oom),
               "crash/hang/OOM injection requires process isolation");
    VBR_ENSURE(!faults.oom || limits.worker.memory_bytes > 0 || !limits.isolate,
               "OOM injection requires a memory ceiling");
    VBR_ENSURE(!faults.hang || limits.worker.deadline_seconds > 0.0 || !limits.isolate,
               "hang injection requires a watchdog deadline");
  }
}

CellRecord settled_record(std::uint64_t cell_index, AttemptOutcome&& outcome,
                          std::size_t attempts) {
  CellRecord record;
  record.cell_index = cell_index;
  if (outcome.kind == AttemptOutcome::Kind::kDone) {
    record.status = CellStatus::kDone;
    record.result = outcome.result;
  } else {
    record.status = CellStatus::kQuarantined;
    record.failure.kind = failure_kind_of(outcome.kind);
    record.failure.exit_code = outcome.exit_code;
    record.failure.term_signal = outcome.term_signal;
    record.failure.attempts = attempts;
    record.failure.max_rss_kib = outcome.max_rss_kib;
    record.failure.wall_seconds = outcome.wall_seconds;
    record.failure.message = std::move(outcome.message);
    record.failure.stderr_tail = std::move(outcome.stderr_tail);
  }
  return record;
}

/// How finely idle waits are sliced so `tick` (the lease heartbeat) keeps
/// firing while every pending cell is backing off.
constexpr auto kIdleTick = std::chrono::milliseconds(50);

}  // namespace

InjectedFault fault_for_attempt(const SweepFaultPlan& faults, std::uint64_t cell_index,
                                std::size_t attempt) {
  if (std::find(faults.poison.begin(), faults.poison.end(), cell_index) !=
      faults.poison.end()) {
    return InjectedFault::kPoison;
  }
  if (attempt != 1 || faults.rate <= 0.0) return InjectedFault::kNone;

  Fnv1a h;
  h.update(&faults.seed, sizeof faults.seed);
  h.update(&cell_index, sizeof cell_index);
  const std::uint64_t digest = h.digest();
  const double u = static_cast<double>(digest >> 11) * 0x1.0p-53;
  if (u >= faults.rate) return InjectedFault::kNone;

  InjectedFault kinds[3];
  std::size_t enabled = 0;
  if (faults.crash) kinds[enabled++] = InjectedFault::kCrash;
  if (faults.hang) kinds[enabled++] = InjectedFault::kHang;
  if (faults.oom) kinds[enabled++] = InjectedFault::kOom;
  if (enabled == 0) return InjectedFault::kNone;
  return kinds[(digest & 0x7ff) % enabled];
}

std::uint64_t results_hash(std::span<const CellRecord> records) {
  Fnv1a h;
  for (const CellRecord& record : records) {
    h.update(&record.cell_index, sizeof record.cell_index);
    const std::uint8_t status = static_cast<std::uint8_t>(record.status);
    h.update(&status, sizeof status);
    if (record.status == CellStatus::kDone) {
      const CellResult& r = record.result;
      h.update(std::span<const double>(
          {r.mean_rate_bps, r.capacity_bps, r.buffer_bytes, r.loss_rate,
           r.mean_queue_bytes, r.max_queue_bytes, r.overflow_probability,
           r.required_capacity_bps}));
    }
  }
  return h.digest();
}

void settle_cells(const SweepGrid& grid, const std::vector<std::uint64_t>& cells,
                  const SweepLimits& limits, const SweepFaultPlan& faults,
                  const std::function<bool(const CellRecord&)>& on_settled,
                  const std::function<void()>& tick, SettleStats* stats) {
  validate_sweep_inputs(grid, limits, faults);
  VBR_ENSURE(static_cast<bool>(on_settled), "settle_cells needs a settle callback");
  const std::size_t total = cell_count(grid);
  const std::vector<std::uint64_t> seeds = derive_cell_seeds(grid);

  using Clock = std::chrono::steady_clock;
  struct Pending {
    std::uint64_t cell = 0;
    std::size_t attempt = 1;  ///< the attempt about to run
    Clock::time_point due;
  };
  const auto later_due = [](const Pending& a, const Pending& b) {
    return a.due > b.due;
  };

  // Two queues instead of one blocking loop: cells whose retry is backing
  // off wait in `delayed` (a min-heap on due time) while every other cell
  // keeps flowing through `ready` — one flaky cell never stalls the pool.
  std::deque<Pending> ready;
  std::priority_queue<Pending, std::vector<Pending>, decltype(later_due)> delayed(
      later_due);
  for (const std::uint64_t cell : cells) {
    VBR_ENSURE(cell < total, "settle_cells cell index out of range");
    ready.push_back({cell, 1, {}});
  }

  while (!ready.empty() || !delayed.empty()) {
    const Clock::time_point now = Clock::now();
    while (!delayed.empty() && delayed.top().due <= now) {
      ready.push_back(delayed.top());
      delayed.pop();
    }
    if (ready.empty()) {
      // Every pending cell is backing off. Sleep in short slices so `tick`
      // (the lease heartbeat) keeps firing while we wait.
      const Clock::time_point wake = std::min(delayed.top().due, now + kIdleTick);
      std::this_thread::sleep_until(wake);
      if (tick) tick();
      continue;
    }

    const Pending pending = ready.front();
    ready.pop_front();
    if (stats != nullptr && pending.attempt > 1) stats->retried_attempts += 1;
    if (tick) tick();

    CellSpec spec = cell_at(grid, pending.cell);
    spec.seed = seeds[pending.cell];
    const InjectedFault fault = fault_for_attempt(faults, pending.cell, pending.attempt);
    AttemptOutcome outcome = limits.isolate
                                 ? run_attempt(spec, limits.worker, fault)
                                 : run_attempt_inprocess(spec, fault);

    // Done settles; a structured vbr::Error is deterministic (the same spec
    // throws the same way every retry) so it quarantines immediately; an
    // exhausted budget quarantines; anything else requeues with a due time.
    const bool terminal = outcome.kind == AttemptOutcome::Kind::kDone ||
                          outcome.kind == AttemptOutcome::Kind::kPoison ||
                          pending.attempt >= limits.max_attempts;
    if (terminal) {
      const CellRecord record =
          settled_record(pending.cell, std::move(outcome), pending.attempt);
      if (!on_settled(record)) return;
    } else {
      const double delay_s =
          limits.backoff_seconds *
          std::pow(2.0, static_cast<double>(pending.attempt - 1));
      delayed.push({pending.cell, pending.attempt + 1,
                    Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(delay_s))});
    }
  }
}

SweepReport run_sweep(const SweepOptions& options) {
  validate_sweep_inputs(options.grid, options.limits, options.faults);

  const std::size_t cells = cell_count(options.grid);
  const bool persist = !options.log_path.empty();

  std::map<std::uint64_t, CellRecord> settled;
  SweepReport report;
  report.total_cells = cells;

  // Persistence is the whole-grid special case of a shard log: one shard,
  // covering [0, cells). Resume scans the log, truncates a torn tail, and
  // salvages every settled cell; the sealed header rejects a log from a
  // different grid with an error naming both fingerprints.
  std::optional<ResultLogWriter> writer;
  if (persist) {
    const ResultLogHeader header = shard_log_header(options.grid, 1, 0);
    std::optional<ResultLogScan> scan;
    if (options.resume) scan = recover_result_log(options.log_path, header);
    if (scan.has_value()) {
      for (CellRecord& record : scan->records) {
        settled.emplace(record.cell_index, std::move(record));
      }
      report.resumed_cells = settled.size();
      writer = ResultLogWriter::append_to(options.log_path, *scan, options.durable);
    } else {
      // A fresh sweep seals its header up front so a fingerprint mismatch
      // on a later resume is caught even if no cell ever settled.
      writer = ResultLogWriter::create(options.log_path, header, options.durable);
    }
  }

  if (options.on_cell_settled) {
    for (const auto& [index, record] : settled) options.on_cell_settled(record);
  }

  std::vector<std::uint64_t> todo;
  todo.reserve(cells - settled.size());
  for (std::uint64_t index = 0; index < cells; ++index) {
    if (!settled.contains(index)) todo.push_back(index);
  }

  SettleStats stats;
  settle_cells(options.grid, todo, options.limits, options.faults,
               [&](const CellRecord& record) {
                 if (writer.has_value()) writer->append(record);
                 const auto [it, inserted] = settled.emplace(record.cell_index, record);
                 (void)inserted;
                 if (options.on_cell_settled) options.on_cell_settled(it->second);
                 return true;
               },
               /*tick=*/{}, &stats);
  report.retried_attempts = stats.retried_attempts;

  report.records.reserve(settled.size());
  for (auto& [index, record] : settled) {
    if (record.status == CellStatus::kDone) {
      report.completed += 1;
    } else {
      report.quarantined += 1;
    }
    report.records.push_back(std::move(record));
  }
  report.results_hash = results_hash(report.records);
  return report;
}

}  // namespace vbr::sweep
