#include "vbr/sweep/dispatch.hpp"

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "vbr/common/atomic_file.hpp"
#include "vbr/common/checksum.hpp"
#include "vbr/common/error.hpp"
#include "vbr/sweep/result_log.hpp"

namespace vbr::sweep {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string shard_file_stem(std::uint64_t shard_index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard_%04llu",
                static_cast<unsigned long long>(shard_index));
  return buf;
}

std::string read_small_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Write a small control file (token, tmp claim). Lease files are
/// scheduling state, not results: losing one costs a replay, never data,
/// so plain stream writes are fine here.
void write_small_file(const std::filesystem::path& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) throw IoError("cannot write lease file: " + path.string());
}

double lease_age_seconds(const std::filesystem::path& lease_path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(lease_path, ec);
  if (ec) return -1.0;  // vanished: the holder released it
  const auto age = std::filesystem::file_time_type::clock::now() - mtime;
  return std::chrono::duration<double>(age).count();
}

/// Establish-or-verify the directory's identity witness. First writer
/// wins; every later pool compares byte-for-byte and a pool bringing a
/// different grid (or shard count) is turned away with both fingerprints
/// in the error — a sweep directory can never blend two sweeps.
void ensure_sweep_meta(const std::filesystem::path& sweep_dir,
                       const ResultLogHeader& shard0, bool durable) {
  const std::filesystem::path meta = sweep_dir / "sweep.meta";
  const std::string expected = encode_log_header(shard0);
  if (std::filesystem::exists(meta)) {
    const std::string found = read_small_file(meta);
    if (found == expected) return;
    std::istringstream in(found, std::ios::binary);
    ResultLogScan scan = scan_result_log(in, meta.string(), nullptr);
    throw IoError(meta.string() + ": sweep directory belongs to a different sweep: " +
                  "grid expects fingerprint " + hex16(shard0.sweep_fingerprint) +
                  " over " + std::to_string(shard0.shard_count) +
                  " shards, directory carries " +
                  hex16(scan.header.sweep_fingerprint) + " over " +
                  std::to_string(scan.header.shard_count) + " shards");
  }
  // Racing pools share the witness path, so their atomic-write tmp files
  // collide and the loser's rename can fail after the winner's rename
  // consumed it. The bytes are a pure function of the grid, so a loss is
  // benign iff the winner's file matches what we meant to write.
  try {
    write_file_atomic(meta, expected, durable);
  } catch (const IoError&) {
    if (read_small_file(meta) != expected) throw;
  }
}

std::atomic<std::uint64_t> g_claim_counter{0};

/// A torn tail, manufactured: the first half of a plausible frame header,
/// exactly what a SIGKILL mid-append leaves behind. Recovery must truncate
/// it and lose nothing that was whole.
void append_torn_tail(const std::filesystem::path& log_path) {
  std::ofstream out(log_path, std::ios::binary | std::ios::app);
  const char garbage[7] = {64, 0, 0, 0, 0, 0, 0};
  out.write(garbage, sizeof garbage);
  out.flush();
}

[[noreturn]] void run_pool_child(const PoolOptions* options) {
  int code = 1;
  try {
    (void)run_pool(*options);
    code = 0;
  } catch (const std::exception& e) {
    // stderr is unbuffered: safe before _exit, and the only trace a failed
    // pool leaves for the dispatcher's operator.
    std::fprintf(stderr, "run_pool[%s]: %s\n", options->pool_id.c_str(), e.what());
  } catch (...) {
    code = 1;
  }
  ::_exit(code);
}

}  // namespace

std::filesystem::path shard_log_path(const std::filesystem::path& sweep_dir,
                                     std::uint64_t shard_index) {
  return sweep_dir / (shard_file_stem(shard_index) + ".log");
}

std::filesystem::path shard_done_path(const std::filesystem::path& sweep_dir,
                                      std::uint64_t shard_index) {
  return sweep_dir / (shard_file_stem(shard_index) + ".done");
}

std::filesystem::path shard_lease_path(const std::filesystem::path& sweep_dir,
                                       std::uint64_t shard_index) {
  return sweep_dir / "leases" / (shard_file_stem(shard_index) + ".lease");
}

LeaseClaim claim_lease(const std::filesystem::path& lease_path,
                       const std::string& token, double ttl_seconds,
                       bool steal_stale, bool ignore_fresh) {
  const std::filesystem::path tmp =
      lease_path.parent_path() /
      (".claim_" + std::to_string(static_cast<std::uint64_t>(::getpid())) + "_" +
       std::to_string(g_claim_counter.fetch_add(1)));
  write_small_file(tmp, token);

  // link(2) is atomic and *exclusive*: exactly one pool's token becomes the
  // lease, everyone else gets EEXIST. That is the whole claim protocol.
  if (::link(tmp.c_str(), lease_path.c_str()) == 0) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return LeaseClaim::kClaimed;
  }
  const int link_errno = errno;
  if (link_errno != EEXIST) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw IoError("lease claim failed: " + lease_path.string() + ": " +
                  std::strerror(link_errno));
  }

  const double age = lease_age_seconds(lease_path);
  const bool stale = ignore_fresh || age < 0.0 || (steal_stale && age > ttl_seconds);
  if (!stale) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return LeaseClaim::kHeld;
  }

  // Steal: rename(2) atomically replaces the stale lease with our token.
  // Two thieves can race here; rename is atomic, so one token survives and
  // the read-back below tells each thief whether it won. The brief window
  // where the loser still believes it owns the shard is healed downstream:
  // its appends are byte-identical duplicates and its next heartbeat sees
  // the foreign token and abandons.
  if (::rename(tmp.c_str(), lease_path.c_str()) != 0) {
    const int rename_errno = errno;
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw IoError("lease steal failed: " + lease_path.string() + ": " +
                  std::strerror(rename_errno));
  }
  return read_small_file(lease_path) == token ? LeaseClaim::kStolen
                                              : LeaseClaim::kHeld;
}

bool heartbeat_lease(const std::filesystem::path& lease_path,
                     const std::string& token) {
  if (read_small_file(lease_path) != token) return false;
  std::error_code ec;
  std::filesystem::last_write_time(lease_path,
                                   std::filesystem::file_time_type::clock::now(), ec);
  return !ec;
}

void release_lease(const std::filesystem::path& lease_path,
                   const std::string& token) {
  if (read_small_file(lease_path) != token) return;  // stolen: the thief owns it
  std::error_code ec;
  std::filesystem::remove(lease_path, ec);
}

namespace {

struct ShardWork {
  std::uint64_t index = 0;
  bool stolen = false;
  std::string token;
};

/// Settle one claimed shard from its log prefix to its done marker.
/// Returns false if the lease was stolen mid-run (the thief replays).
bool work_shard(const PoolOptions& options, const ShardWork& work,
                std::uint64_t& records_appended, PoolReport& report) {
  const ResultLogHeader header =
      shard_log_header(options.grid, options.shard_count, work.index);
  const std::filesystem::path log = shard_log_path(options.sweep_dir, work.index);
  const std::filesystem::path lease = shard_lease_path(options.sweep_dir, work.index);

  // Steal-and-replay: recover whatever the previous owner settled (torn
  // tail truncated), then append only the remainder.
  std::optional<ResultLogScan> scan = recover_result_log(log, header);
  std::vector<std::uint64_t> remaining;
  std::optional<ResultLogWriter> writer;
  if (scan.has_value()) {
    report.cells_salvaged += scan->records.size();
    std::size_t next = 0;
    for (std::uint64_t cell = header.first_cell; cell < header.end_cell; ++cell) {
      if (next < scan->records.size() && scan->records[next].cell_index == cell) {
        ++next;
      } else {
        remaining.push_back(cell);
      }
    }
    writer = ResultLogWriter::append_to(log, *scan, options.durable);
  } else {
    writer = ResultLogWriter::create(log, header, options.durable);
    remaining.reserve(static_cast<std::size_t>(header.end_cell - header.first_cell));
    for (std::uint64_t cell = header.first_cell; cell < header.end_cell; ++cell) {
      remaining.push_back(cell);
    }
  }

  bool lease_ok = true;
  auto last_beat = std::chrono::steady_clock::now();
  const auto beat = [&] {
    if (!lease_ok) return;
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - last_beat).count() <
        options.lease.heartbeat_seconds) {
      return;
    }
    last_beat = now;
    if (!heartbeat_lease(lease, work.token)) lease_ok = false;
  };

  if (!remaining.empty()) {
    SettleStats stats;
    settle_cells(
        options.grid, remaining, options.limits, options.faults,
        [&](const CellRecord& record) {
          // A lost lease means a thief is replaying this shard; stop
          // without appending so the overlap stays as small as the race.
          if (!lease_ok) return false;
          writer->append(record);
          report.cells_settled += 1;
          records_appended += 1;
          if (options.pool_faults.kill_after_records > 0 &&
              records_appended >= options.pool_faults.kill_after_records) {
            // The soak seam: die the way a power cut would — no release,
            // no flush ordering, optionally half a frame on disk. The
            // lease goes stale and a survivor steals the shard.
            writer->close();
            if (options.pool_faults.torn_tail_on_kill) append_torn_tail(log);
            (void)::raise(SIGKILL);
          }
          if (options.on_cell_settled) options.on_cell_settled(record);
          return true;
        },
        beat, &stats);
    report.retried_attempts += stats.retried_attempts;
  }

  if (!lease_ok) {
    report.lost_leases += 1;
    return false;
  }
  writer->close();
  // Done marker before release: a shard with no lease and no marker is
  // claimable, a shard with a marker is finished — there is no ambiguous
  // state in between.
  write_file_atomic(shard_done_path(options.sweep_dir, work.index),
                    hex16(header.shard_fingerprint) + "\n", options.durable);
  release_lease(lease, work.token);
  report.shards_completed += 1;
  if (work.stolen) report.shards_stolen += 1;
  return true;
}

}  // namespace

PoolReport run_pool(const PoolOptions& options) {
  options.grid.validate();
  VBR_ENSURE(options.shard_count >= 1 && options.shard_count <= kMaxShards,
             "pool shard count out of range");
  VBR_ENSURE(options.lease.ttl_seconds > 0.0, "lease ttl must be positive");
  VBR_ENSURE(options.lease.heartbeat_seconds > 0.0 &&
                 options.lease.heartbeat_seconds < options.lease.ttl_seconds,
             "lease heartbeat must be shorter than the ttl");
  VBR_ENSURE(!options.sweep_dir.empty(), "pool needs a sweep directory");

  std::filesystem::create_directories(options.sweep_dir / "leases");
  ensure_sweep_meta(options.sweep_dir,
                    shard_log_header(options.grid, options.shard_count, 0),
                    options.durable);

  const std::string pool_id =
      options.pool_id.empty()
          ? "pool-" + std::to_string(static_cast<std::uint64_t>(::getpid()))
          : options.pool_id;

  PoolReport report;
  std::uint64_t records_appended = 0;
  bool duplicate_claim_spent = false;

  // Start each pool's scan at a different shard so N pools fan out over N
  // shards instead of convoying on shard 0.
  Fnv1a spread;
  spread.update(pool_id.data(), pool_id.size());
  const std::uint64_t start = spread.digest() % options.shard_count;

  for (;;) {
    bool all_done = true;
    std::optional<ShardWork> claimed;
    for (std::uint64_t step = 0; step < options.shard_count; ++step) {
      const std::uint64_t index = (start + step) % options.shard_count;
      if (std::filesystem::exists(shard_done_path(options.sweep_dir, index))) {
        continue;
      }
      all_done = false;
      if (claimed.has_value()) continue;  // finish the status scan anyway

      const bool ignore_fresh =
          options.pool_faults.duplicate_claim && !duplicate_claim_spent;
      std::string token = pool_id + " pid=" +
                          std::to_string(static_cast<std::uint64_t>(::getpid())) +
                          " claim=" + std::to_string(g_claim_counter.fetch_add(1)) +
                          "\n";
      const LeaseClaim claim =
          claim_lease(shard_lease_path(options.sweep_dir, index), token,
                      options.lease.ttl_seconds, /*steal_stale=*/true, ignore_fresh);
      if (claim == LeaseClaim::kHeld) continue;
      if (ignore_fresh) duplicate_claim_spent = true;
      claimed = ShardWork{index, claim == LeaseClaim::kStolen, std::move(token)};
    }
    if (all_done) {
      report.sweep_complete = true;
      return report;
    }
    if (!claimed.has_value()) {
      // Every unfinished shard is freshly leased to someone else. Wait a
      // beat: either their markers appear, or their leases go stale and
      // the next scan steals them.
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(options.lease.heartbeat_seconds, 0.25)));
      continue;
    }
    (void)work_shard(options, *claimed, records_appended, report);
  }
}

MultiPoolReport run_pools(const PoolOptions& base, std::size_t pool_count,
                          const std::function<PoolFaultPlan(std::size_t)>&
                              plan_for_pool) {
  VBR_ENSURE(pool_count >= 1, "run_pools needs at least one pool");
  MultiPoolReport report;
  report.pools = pool_count;

  // Everything a child needs is computed before its fork so the child
  // branch is a bare handoff (fork-confinement rule A1).
  std::vector<PoolOptions> per_pool(pool_count, base);
  for (std::size_t i = 0; i < pool_count; ++i) {
    per_pool[i].pool_id = (base.pool_id.empty() ? std::string("pool")
                                                : base.pool_id) +
                          "-" + std::to_string(i);
    if (plan_for_pool) per_pool[i].pool_faults = plan_for_pool(i);
  }

  std::vector<pid_t> pids;
  pids.reserve(pool_count);
  for (std::size_t i = 0; i < pool_count; ++i) {
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (const pid_t child : pids) (void)::kill(child, SIGKILL);
      for (const pid_t child : pids) {
        int status = 0;
        while (::waitpid(child, &status, 0) < 0 && errno == EINTR) {
        }
      }
      throw IoError("run_pools: fork failed: " + std::string(std::strerror(errno)));
    }
    if (pid == 0) {
      run_pool_child(&per_pool[i]);
    }
    pids.push_back(pid);
  }

  for (const pid_t pid : pids) {
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) report.pools_failed += 1;
  }

  report.sweep_complete = true;
  for (std::uint64_t index = 0; index < base.shard_count; ++index) {
    if (!std::filesystem::exists(shard_done_path(base.sweep_dir, index))) {
      report.sweep_complete = false;
      break;
    }
  }
  return report;
}

SweepReport collect_sweep(const std::filesystem::path& sweep_dir,
                          const SweepGrid& grid, std::uint64_t shard_count,
                          bool require_complete) {
  grid.validate();
  const std::uint64_t cells = cell_count(grid);
  // Verify identity without establishing it: collecting must never create
  // state, and a collect against the wrong directory must fail the same
  // loud way a pool would.
  if (std::filesystem::exists(sweep_dir / "sweep.meta")) {
    ensure_sweep_meta(sweep_dir, shard_log_header(grid, shard_count, 0),
                      /*durable=*/false);
  }

  std::vector<std::vector<CellRecord>> shards;
  shards.reserve(static_cast<std::size_t>(shard_count));
  for (std::uint64_t index = 0; index < shard_count; ++index) {
    const ResultLogHeader header = shard_log_header(grid, shard_count, index);
    const std::filesystem::path log = shard_log_path(sweep_dir, index);
    if (!std::filesystem::exists(log)) continue;  // merge reports the gap
    std::ifstream in(log, std::ios::binary);
    if (!in) throw IoError("cannot open sweep result log: " + log.string());
    ResultLogScan scan = scan_result_log(in, log.string(), &header);
    shards.push_back(std::move(scan.records));
  }

  ShardMerge merge = merge_shard_records(shards, cells, require_complete);
  SweepReport report;
  report.total_cells = static_cast<std::size_t>(cells);
  report.completed = merge.completed;
  report.quarantined = merge.quarantined;
  report.records = std::move(merge.records);
  report.results_hash = merge.results_hash;
  return report;
}

}  // namespace vbr::sweep
