// The sweep manifest: resumable, CRC-guarded record of every settled cell.
//
// The supervisor rewrites the manifest atomically (vbr::write_file_atomic,
// temp + rename) after each cell settles, so SIGKILLing the supervisor at
// any instant leaves either the previous complete manifest or the new one —
// never a torn file. A rerun with --resume loads it, verifies the sweep
// fingerprint, skips every settled cell, and finishes the rest; because
// each cell is a pure function of its spec (see cell_eval.hpp), the merged
// results are bit-identical to an uninterrupted sweep's.
//
// The envelope is the shared VBR artifact frame (src/vbr/run/envelope.hpp):
//
//   8 bytes  magic  "VBRSWEP1"
//   u32      version (currently 1)
//   u64      payload size / u32 CRC-32 of the payload
//   payload  (fields below, serialized via vbr::io)
//
// The CRC is verified before any field parse; forged counts, out-of-range
// or duplicate cell indexes, oversized strings and trailing bytes all
// reject the file as a whole with vbr::IoError. This is the surface
// fuzz_sweep_manifest drives.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "vbr/sweep/cell_eval.hpp"

namespace vbr::sweep {

inline constexpr std::array<char, 8> kManifestMagic = {'V', 'B', 'R', 'S',
                                                       'W', 'E', 'P', '1'};
inline constexpr std::uint32_t kManifestVersion = 1;

/// Hard bound on any sweep's cell count: far above the 10^6-cell target,
/// low enough that a forged count cannot drive a pathological allocation.
/// Shared by the manifest, the result log and the shard planner.
inline constexpr std::uint64_t kMaxSweepCells = std::uint64_t{1} << 24;

/// Terminal state of a settled cell.
enum class CellStatus : std::uint8_t {
  kDone = 1,         ///< evaluated; `result` is valid
  kQuarantined = 2,  ///< exhausted the retry budget; `failure` is valid
};

/// Why a worker attempt (or the whole cell) failed.
enum class FailureKind : std::uint32_t {
  kCrash = 1,  ///< nonzero exit or fatal signal
  kHang = 2,   ///< watchdog deadline or CPU ceiling (SIGXCPU)
  kOom = 3,    ///< memory ceiling (bad_alloc under RLIMIT_AS, or kernel kill)
  kError = 4,  ///< worker reported a structured vbr::Error (deterministic poison)
};

const char* failure_kind_name(FailureKind kind);

/// Post-mortem of a quarantined cell: what the last attempt looked like.
/// Diagnostics (rusage, wall time, stderr) are inherently nondeterministic
/// and are excluded from the sweep's determinism witness.
struct CellFailure {
  FailureKind kind = FailureKind::kCrash;
  std::int32_t exit_code = 0;    ///< valid when the worker exited
  std::int32_t term_signal = 0;  ///< valid when the worker was signaled
  std::uint64_t attempts = 0;    ///< total attempts spent on the cell
  std::uint64_t max_rss_kib = 0; ///< last attempt's peak RSS (rusage)
  double wall_seconds = 0.0;     ///< last attempt's wall time
  std::string message;           ///< worker-reported error, when structured
  std::string stderr_tail;       ///< last bytes of the worker's stderr
};

/// One settled cell.
struct CellRecord {
  std::uint64_t cell_index = 0;
  CellStatus status = CellStatus::kDone;
  CellResult result;   ///< valid when status == kDone
  CellFailure failure; ///< valid when status == kQuarantined
};

/// Parsed manifest contents. Invariants (enforced on load): every record
/// index < total_cells, indexes strictly increasing (no duplicates),
/// records.size() <= total_cells.
struct SweepManifest {
  std::uint64_t fingerprint = 0;  ///< sweep_fingerprint of the grid
  std::uint64_t total_cells = 0;
  std::vector<CellRecord> records;  ///< settled cells, ascending cell_index
};

/// Serialize / parse one settled-cell record body (index + status + result
/// or failure). This is the shared per-record payload of the VBRSWEP1
/// manifest and the VBRSWPL1 append-only result log; read_cell_record
/// validates index range, status and failure-kind enums, and the bounded
/// diagnostic strings, throwing vbr::IoError on any violation.
void write_cell_record(std::ostream& out, const CellRecord& record);
CellRecord read_cell_record(std::istream& in, std::uint64_t total_cells,
                            const std::string& name);

/// Serialize to the full envelope.
std::string encode_manifest(const SweepManifest& manifest);

/// Parse an envelope from a stream; throws vbr::IoError on any corruption
/// or violated invariant, never returns partial state.
SweepManifest parse_manifest(std::istream& in, const std::string& name);

/// Load and validate a manifest file.
SweepManifest load_manifest(const std::filesystem::path& path);

/// Atomically persist a manifest (temp + rename; fsync when durable).
void save_manifest(const std::filesystem::path& path, const SweepManifest& manifest,
                   bool durable = false);

}  // namespace vbr::sweep
