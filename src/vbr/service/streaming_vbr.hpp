// Streaming form of the paper's complete VBR source: a streaming LRD core
// pushed through the model-variant head (Gamma/Pareto marginal map,
// Gaussian affine clip, or i.i.d. marginal sampling), sample by sample.
//
// The head is stateless per sample, so the stream inherits the core's
// block-size invariance and checkpoint exactness unchanged. The tabulated
// marginal map — the only heavy head object — depends solely on the
// marginal parameters, so all streams of one service share a single
// immutable table through a process-wide cache; per-stream head state is
// nothing (kFull / kGaussianFarima) or one Rng (kIidGammaPareto).
//
// Rng consumption mirrors VbrVideoSourceModel::generate exactly: the iid
// variant draws straight from the handed per-stream Rng, the core variants
// hand it to the core (which takes one split(), the batch hosking_farima
// convention) — so an iid stream and a full-horizon hosking stream are
// bit-identical to their batch counterparts (pinned by service_test).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "vbr/common/rng.hpp"
#include "vbr/model/marginal_transform.hpp"
#include "vbr/service/streaming_source.hpp"
#include "vbr/stats/gamma_pareto.hpp"

namespace vbr::service {

/// Opaque shared head state: the marginal distribution plus the tabulated
/// map that references it (defined in streaming_vbr.cpp).
struct MarginalMapEntry;

class StreamingVbrSource final : public StreamingSource {
 public:
  /// Throws vbr::InvalidArgument for invalid model parameters or a backend
  /// with no streaming form (davies-harte).
  StreamingVbrSource(const model::VbrModelParams& params, model::ModelVariant variant,
                     model::GeneratorBackend backend, const StreamingTuning& tuning,
                     Rng& parent);

  using StreamingSource::next_block;
  void next_block(std::size_t n, std::vector<double>& out) override;
  std::uint64_t position() const override;
  const char* kind() const override { return "vbr-stream"; }
  void save(std::ostream& out) const override;
  void restore(std::istream& in) override;

  /// Process-wide marginal-map cache introspection.
  static std::size_t marginal_map_cache_size();
  static void marginal_map_cache_clear();

 private:
  model::VbrModelParams params_;
  model::ModelVariant variant_;
  model::GeneratorBackend backend_;
  std::shared_ptr<const MarginalMapEntry> map_;  ///< kFull only
  std::unique_ptr<StreamingSource> core_;        ///< null for kIidGammaPareto
  std::unique_ptr<stats::GammaParetoDistribution> marginal_;  ///< kIidGammaPareto only
  Rng rng_;                                      ///< kIidGammaPareto only
  std::uint64_t iid_position_ = 0;
};

}  // namespace vbr::service
