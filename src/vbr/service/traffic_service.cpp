#include "vbr/service/traffic_service.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"
#include "vbr/engine/thread_pool.hpp"
#include "vbr/model/fgn_generator.hpp"

namespace vbr::service {
namespace {

/// Streams generated per scratch cycle: large enough to amortize dispatch,
/// small enough that the scratch pool (kChunkStreams * block doubles) stays
/// a rounding error next to a million stream states.
constexpr std::size_t kChunkStreams = 1024;

}  // namespace

TrafficService::TrafficService(const ServiceConfig& config) : config_(config) {
  VBR_ENSURE(config.num_streams >= 1, "service needs at least one stream");
  VBR_ENSURE(config.frame_seconds > 0.0, "frame interval must be positive");
  VBR_ENSURE(config.queue_capacity_bytes_per_sec >= 0.0,
             "queue capacity must be non-negative");
  if (config.queue_capacity_bytes_per_sec > 0.0) {
    VBR_ENSURE(config.queue_buffer_bytes > 0.0,
               "a queue feed needs a positive buffer");
    queue_ = std::make_unique<net::FluidQueue>(config.queue_capacity_bytes_per_sec,
                                               config.queue_buffer_bytes);
  }

  // The engine's determinism guarantee: derive every per-stream Rng from
  // the master seed by split(), in stream order, before building anything.
  Rng master(config.seed);
  std::vector<Rng> stream_rngs;
  stream_rngs.reserve(config.num_streams);
  for (std::size_t i = 0; i < config.num_streams; ++i) stream_rngs.push_back(master.split());

  streams_.reserve(config.num_streams);
  for (std::size_t i = 0; i < config.num_streams; ++i) {
    streams_.push_back(make_streaming_source(config.params, config.variant, config.backend,
                                             config.tuning, stream_rngs[i]));
  }
  status_.assign(config.num_streams, StreamStatus::kActive);
  stream_hash_.assign(config.num_streams, Fnv1a::kOffsetBasis);
}

std::uint64_t TrafficService::results_hash() const {
  Fnv1a combined;
  for (const std::uint64_t digest : stream_hash_) combined.update(&digest, sizeof digest);
  return combined.digest();
}

std::uint64_t TrafficService::stream_digest(std::size_t stream) const {
  VBR_ENSURE(stream < stream_hash_.size(), "stream index out of range");
  return stream_hash_[stream];
}

void TrafficService::advance_round(std::size_t block, StreamGovernor* governor) {
  VBR_ENSURE(block >= 1, "round block must be at least 1");
  const std::size_t n = streams_.size();
  const std::size_t threads =
      std::min(engine::resolve_thread_count(config_.threads), kChunkStreams);

  aggregate_.assign(block, KahanSum{});
  scratch_.resize(std::min(n, kChunkStreams));
  quarantine_pending_.assign(scratch_.size(), 0);

  for (std::size_t base = 0; base < n; base += kChunkStreams) {
    const std::size_t count = std::min(kChunkStreams, n - base);
    // Parallel generation: worker i writes only scratch_[i] (and its own
    // quarantine byte); scheduling decides who computes each stream, never
    // what is computed. The governor hook catches every stream exception
    // internally, so nothing escapes the worker.
    engine::parallel_for_index(count, std::min(threads, count), [&](std::size_t i) {
      std::vector<double>& buf = scratch_[i];
      buf.clear();
      quarantine_pending_[i] = 0;
      if (status_[base + i] != StreamStatus::kActive) return;
      if (governor != nullptr) {
        if (!governor->generate(base + i, *streams_[base + i], block, buf)) {
          quarantine_pending_[i] = 1;
        }
      } else {
        streams_[base + i]->next_block(block, buf);
      }
    });
    // Sequential fold in stream order: hash, sink, totals, aggregate. This
    // is the only place round results are observed, so thread count can
    // never reorder the reduction.
    for (std::size_t i = 0; i < count; ++i) {
      if (quarantine_pending_[i] != 0) status_[base + i] = StreamStatus::kQuarantined;
      const std::vector<double>& buf = scratch_[i];
      if (buf.empty()) continue;
      const std::span<const double> samples(buf);
      Fnv1a h(stream_hash_[base + i]);
      h.update(samples);
      stream_hash_[base + i] = h.digest();
      moments_.push(samples);
      for (std::size_t j = 0; j < samples.size(); ++j) {
        total_bytes_.add(samples[j]);
        aggregate_[j].add(samples[j]);
      }
      total_samples_ += samples.size();
    }
  }

  if (queue_) {
    for (std::size_t j = 0; j < block; ++j) {
      queue_->offer(aggregate_[j].value(), config_.frame_seconds);
    }
  }
  ++rounds_;
}

void TrafficService::pause(std::size_t stream) {
  VBR_ENSURE(stream < status_.size(), "stream index out of range");
  VBR_ENSURE(status_[stream] == StreamStatus::kActive, "only an active stream can pause");
  status_[stream] = StreamStatus::kPaused;
}

void TrafficService::resume(std::size_t stream) {
  VBR_ENSURE(stream < status_.size(), "stream index out of range");
  VBR_ENSURE(status_[stream] == StreamStatus::kPaused, "only a paused stream can resume");
  status_[stream] = StreamStatus::kActive;
}

void TrafficService::retire(std::size_t stream) {
  VBR_ENSURE(stream < status_.size(), "stream index out of range");
  VBR_ENSURE(status_[stream] != StreamStatus::kRetired, "stream already retired");
  status_[stream] = StreamStatus::kRetired;
  streams_[stream].reset();  // reclaim the per-stream state immediately
}

StreamStatus TrafficService::status(std::size_t stream) const {
  VBR_ENSURE(stream < status_.size(), "stream index out of range");
  return status_[stream];
}

std::uint64_t TrafficService::stream_position(std::size_t stream) const {
  VBR_ENSURE(stream < status_.size(), "stream index out of range");
  VBR_ENSURE(status_[stream] != StreamStatus::kRetired, "retired streams have no position");
  return streams_[stream]->position();
}

std::size_t TrafficService::active_streams() const {
  std::size_t active = 0;
  for (const StreamStatus s : status_) active += (s == StreamStatus::kActive) ? 1 : 0;
  return active;
}

void TrafficService::save_state(std::ostream& out) const {
  io::write_string(out, "service");
  // Config fingerprint: everything that shapes the sample sequence or the
  // feed state. `threads` is deliberately absent — it never affects output.
  io::write_u64(out, config_.num_streams);
  io::write_u64(out, config_.seed);
  io::write_u8(out, static_cast<std::uint8_t>(config_.variant));
  io::write_string(out, model::generator_backend_name(config_.backend));
  io::write_f64(out, config_.params.marginal.mu_gamma);
  io::write_f64(out, config_.params.marginal.sigma_gamma);
  io::write_f64(out, config_.params.marginal.tail_slope);
  io::write_f64(out, config_.params.hurst);
  io::write_u64(out, config_.tuning.hosking_horizon);
  io::write_u64(out, config_.tuning.paxson_window);
  io::write_u64(out, config_.tuning.paxson_overlap);
  io::write_f64(out, config_.tuning.onoff_mean_active_sessions);
  io::write_f64(out, config_.tuning.onoff_min_session_frames);
  io::write_f64(out, config_.frame_seconds);
  io::write_f64(out, config_.queue_capacity_bytes_per_sec);
  io::write_f64(out, config_.queue_buffer_bytes);

  io::write_u64(out, rounds_);
  io::write_u64(out, total_samples_);
  io::write_f64(out, total_bytes_.value());
  io::write_f64(out, total_bytes_.compensation());
  io::write_u8(out, queue_ ? 1 : 0);
  if (queue_) queue_->save(out);
  moments_.save(out);
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    io::write_u8(out, static_cast<std::uint8_t>(status_[i]));
    io::write_u64(out, stream_hash_[i]);
    if (status_[i] != StreamStatus::kRetired) streams_[i]->save(out);
  }
}

void TrafficService::restore_state(std::istream& in) {
  io::read_tag(in, "service", "TrafficService::restore");
  const std::uint64_t num_streams = io::read_u64(in, "TrafficService::restore");
  const std::uint64_t seed = io::read_u64(in, "TrafficService::restore");
  const std::uint8_t variant = io::read_u8(in, "TrafficService::restore");
  const std::string backend = io::read_string(in, 64, "TrafficService::restore");
  const double mu = io::read_f64(in, "TrafficService::restore");
  const double sigma = io::read_f64(in, "TrafficService::restore");
  const double tail = io::read_f64(in, "TrafficService::restore");
  const double hurst = io::read_f64(in, "TrafficService::restore");
  const std::uint64_t horizon = io::read_u64(in, "TrafficService::restore");
  const std::uint64_t window = io::read_u64(in, "TrafficService::restore");
  const std::uint64_t overlap = io::read_u64(in, "TrafficService::restore");
  const double onoff_mean = io::read_f64(in, "TrafficService::restore");
  const double onoff_min = io::read_f64(in, "TrafficService::restore");
  const double frame_seconds = io::read_f64(in, "TrafficService::restore");
  const double queue_capacity = io::read_f64(in, "TrafficService::restore");
  const double queue_buffer = io::read_f64(in, "TrafficService::restore");
  if (num_streams != config_.num_streams || seed != config_.seed ||
      variant != static_cast<std::uint8_t>(config_.variant) ||
      backend != model::generator_backend_name(config_.backend) ||
      mu != config_.params.marginal.mu_gamma || sigma != config_.params.marginal.sigma_gamma ||
      tail != config_.params.marginal.tail_slope || hurst != config_.params.hurst ||
      horizon != config_.tuning.hosking_horizon || window != config_.tuning.paxson_window ||
      overlap != config_.tuning.paxson_overlap ||
      onoff_mean != config_.tuning.onoff_mean_active_sessions ||
      onoff_min != config_.tuning.onoff_min_session_frames ||
      frame_seconds != config_.frame_seconds ||
      queue_capacity != config_.queue_capacity_bytes_per_sec ||
      queue_buffer != config_.queue_buffer_bytes) {
    throw IoError("TrafficService::restore: checkpoint belongs to a different config");
  }

  const std::uint64_t rounds = io::read_u64(in, "TrafficService::restore");
  const std::uint64_t total_samples = io::read_u64(in, "TrafficService::restore");
  const double bytes_sum = io::read_f64(in, "TrafficService::restore");
  const double bytes_comp = io::read_f64(in, "TrafficService::restore");
  const std::uint8_t has_queue = io::read_u8(in, "TrafficService::restore");
  if (has_queue > 1 || (has_queue == 1) != (queue_ != nullptr)) {
    throw IoError("TrafficService::restore: queue presence mismatch");
  }
  if (queue_) queue_->restore(in);
  moments_.restore(in);
  for (std::size_t i = 0; i < config_.num_streams; ++i) {
    const std::uint8_t status = io::read_u8(in, "TrafficService::restore");
    if (status > static_cast<std::uint8_t>(StreamStatus::kQuarantined)) {
      throw IoError("TrafficService::restore: corrupt stream status");
    }
    const std::uint64_t stream_hash = io::read_u64(in, "TrafficService::restore");
    const auto s = static_cast<StreamStatus>(status);
    if (s == StreamStatus::kRetired) {
      streams_[i].reset();
    } else {
      if (!streams_[i]) {
        // This service already retired the stream, but the checkpoint says
        // it is live: rebuild it in construction order so restore lands on
        // the exact saved state. Re-deriving one split chain is cheap next
        // to the restore itself.
        Rng master(config_.seed);
        Rng stream_rng;
        for (std::size_t k = 0; k <= i; ++k) stream_rng = master.split();
        streams_[i] = make_streaming_source(config_.params, config_.variant, config_.backend,
                                            config_.tuning, stream_rng);
      }
      streams_[i]->restore(in);
    }
    status_[i] = s;
    stream_hash_[i] = stream_hash;
  }
  rounds_ = rounds;
  total_samples_ = total_samples;
  total_bytes_ = KahanSum::from_parts(bytes_sum, bytes_comp);
}

}  // namespace vbr::service
