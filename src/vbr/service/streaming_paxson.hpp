// Blockwise Paxson synthesis: endless approximate fGn from fixed-size
// spectral windows stitched with an equal-power crossfade.
//
// Window i (W samples, W a power of two so the synthesis FFT never pads)
// covers global samples [i*S, i*S + W) with stride S = W - V; consecutive
// windows overlap on V samples. The output over an overlap is
//   y[t] = cos(pi u / 2) * prev[t] + sin(pi u / 2) * next[t],
//   u = (t + 1) / (V + 1) in (0, 1),
// which keeps unit variance exactly (the windows are independent and
// cos^2 + sin^2 = 1) and hands the seam over smoothly — sample 0 of the
// overlap is almost pure previous window, sample V-1 almost pure next.
// Within a window the fGn covariance holds as in the batch synthesis;
// across a seam the cross-window covariance is attenuated by the blend, so
// the stream is *statistically* faithful rather than sample-exact — the
// Whittle / ACF tolerances are pinned against stats/lrd_fidelity in
// service_test (same judge the zoo uses for the batch generator).
//
// Per-stream state: the current window (W doubles) + the composed segment
// (S doubles) + the Rng — heavier than the Hosking ring, so this backend
// suits thousands of fast streams; for millions, prefer "hosking".
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "vbr/common/rng.hpp"
#include "vbr/model/paxson_fgn.hpp"
#include "vbr/service/streaming_source.hpp"

namespace vbr::service {

class StreamingPaxson final : public StreamingSource {
 public:
  /// Consumes one split() from `parent`. Throws vbr::InvalidArgument for
  /// H outside (0, 1), variance <= 0, a non-power-of-two window, or an
  /// overlap outside [1, window / 2].
  StreamingPaxson(const model::PaxsonOptions& options, std::size_t window, std::size_t overlap,
                  Rng& parent);

  using StreamingSource::next_block;
  void next_block(std::size_t n, std::vector<double>& out) override;
  std::uint64_t position() const override { return position_; }
  const char* kind() const override { return "paxson-stream"; }
  void save(std::ostream& out) const override;
  void restore(std::istream& in) override;

  std::size_t window() const { return window_; }
  std::size_t overlap() const { return overlap_; }

 private:
  model::PaxsonOptions options_;
  std::size_t window_;
  std::size_t overlap_;
  std::size_t stride_;  ///< window - overlap, samples emitted per synthesis
  Rng rng_;
  std::vector<double> window_cur_;  ///< latest synthesized window
  std::vector<double> segment_;     ///< composed output segment (stride_ samples)
  std::size_t segment_pos_ = 0;     ///< consumed within segment_
  std::uint64_t windows_drawn_ = 0;
  std::uint64_t position_ = 0;

  void refill_segment();
};

}  // namespace vbr::service
