#include "vbr/service/governor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>
#include <utility>

#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"
#include "vbr/net/admission.hpp"
#include "vbr/stats/gamma_pareto.hpp"

namespace vbr::service {
namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since).count();
}

/// Rewind a source to a previously serialized snapshot (the streaming
/// generalization of the engine's retry-from-a-copy-of-the-Rng: after the
/// rewind the source will emit exactly the samples it emitted last time).
void rewind_to_snapshot(StreamingSource& source, const std::string& snapshot) {
  std::istringstream in(snapshot, std::ios::binary);
  source.restore(in);
}

constexpr int kMaxLevel = 3;

}  // namespace

const char* admission_outcome_name(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted: return "admitted";
    case AdmissionOutcome::kRejectedMemory: return "rejected-memory";
    case AdmissionOutcome::kRejectedCpu: return "rejected-cpu";
    case AdmissionOutcome::kRejectedLoss: return "rejected-loss";
    case AdmissionOutcome::kRejectedDegraded: return "rejected-degraded";
  }
  return "unknown";
}

std::uint64_t stream_state_bytes(model::GeneratorBackend backend, const StreamingTuning& tuning) {
  // Fixed per-stream overhead: the source object (vtable, Rng, marginal
  // map), the service's pointer/status/digest slots, and allocator
  // rounding. Calibrated so hosking at the default horizon 64 lands on the
  // ~0.85 KiB/stream bench_service measured at 10^6 streams (843 MiB).
  constexpr std::uint64_t kFixedOverhead = 360;
  switch (backend) {
    case model::GeneratorBackend::kHosking:
      // m-sample prediction ring; the Durbin-Levinson tables are shared
      // through the per-(H, variance, m) cache, not per stream.
      return kFixedOverhead + 8ull * tuning.hosking_horizon;
    case model::GeneratorBackend::kPaxson:
      // One synthesis window plus the crossfade overlap carried between
      // blocks.
      return kFixedOverhead + 8ull * (tuning.paxson_window + tuning.paxson_overlap);
    case model::GeneratorBackend::kAggregatedOnOff:
      // Active-session end-time heap at its expected occupancy, plus slack
      // for the Poisson excursions above the mean.
      return kFixedOverhead +
             static_cast<std::uint64_t>(24.0 * std::max(1.0, tuning.onoff_mean_active_sessions));
    case model::GeneratorBackend::kDaviesHarte:
      break;  // no streaming form; the service constructor rejects it too
  }
  throw InvalidArgument("stream_state_bytes: backend has no streaming cost model");
}

namespace {

AdmissionDecision decide(const ServiceConfig& config, const ResourceBudget& budget,
                         std::size_t fleet_streams) {
  AdmissionDecision decision;
  decision.requested_streams = fleet_streams;
  decision.projected_memory_bytes =
      static_cast<std::uint64_t>(fleet_streams) * stream_state_bytes(config.backend, config.tuning);
  decision.memory_budget_bytes = budget.memory_bytes;
  decision.projected_samples_per_second =
      static_cast<double>(fleet_streams) / config.frame_seconds;
  decision.cpu_budget_samples_per_second = budget.cpu_samples_per_second;

  if (budget.memory_bytes > 0 && decision.projected_memory_bytes > budget.memory_bytes) {
    decision.outcome = AdmissionOutcome::kRejectedMemory;
    decision.reason = "projected stream state " + std::to_string(decision.projected_memory_bytes) +
                      " B exceeds memory budget " + std::to_string(budget.memory_bytes) + " B";
    return decision;
  }
  if (budget.cpu_samples_per_second > 0.0 &&
      decision.projected_samples_per_second > budget.cpu_samples_per_second) {
    decision.outcome = AdmissionOutcome::kRejectedCpu;
    decision.reason = "projected rate " + std::to_string(decision.projected_samples_per_second) +
                      " samples/s exceeds CPU budget " +
                      std::to_string(budget.cpu_samples_per_second) + " samples/s";
    return decision;
  }
  if (budget.queue_loss_target > 0.0 && config.queue_capacity_bytes_per_sec > 0.0 &&
      fleet_streams <= kLossGateMaxStreams) {
    // The paper's Section 4.2 machinery at its engineering use: admit only
    // if the N-fold Gamma/Pareto convolution keeps the bufferless loss
    // fraction under target at the configured service rate.
    const stats::GammaParetoDistribution marginal(config.params.marginal);
    const net::BufferlessAdmission gate(marginal, config.frame_seconds);
    const double loss =
        gate.loss_fraction(fleet_streams, config.queue_capacity_bytes_per_sec * 8.0);
    if (loss > budget.queue_loss_target) {
      decision.outcome = AdmissionOutcome::kRejectedLoss;
      decision.reason = "analytic loss fraction " + std::to_string(loss) + " exceeds target " +
                        std::to_string(budget.queue_loss_target);
      return decision;
    }
  }
  decision.outcome = AdmissionOutcome::kAdmitted;
  decision.reason = "within budget";
  return decision;
}

}  // namespace

AdmissionDecision admit_fleet(const ServiceConfig& config, const ResourceBudget& budget) {
  VBR_ENSURE(config.num_streams >= 1, "admission needs at least one requested stream");
  VBR_ENSURE(config.frame_seconds > 0.0, "admission needs a positive frame interval");
  return decide(config, budget, config.num_streams);
}

OverloadGovernor::OverloadGovernor(TrafficService& service, GovernorConfig config)
    : service_(service), config_(std::move(config)) {
  VBR_ENSURE(config_.policy.max_attempts >= 1, "retry policy needs at least one attempt");
  VBR_ENSURE(config_.shed_fraction >= 0.0 && config_.shed_fraction <= 1.0,
             "shed fraction must lie in [0, 1]");
  VBR_ENSURE(!(config_.pressure_probe && !config_.pressure_schedule.empty()),
             "pressure probe and pressure schedule are mutually exclusive");
  const std::size_t num_streams = service_.config().num_streams;
  for (std::size_t i = 0; i < config_.stream_faults.size(); ++i) {
    const ScheduledStreamFault& fault = config_.stream_faults[i];
    VBR_ENSURE(fault.stream < num_streams, "scheduled fault names a stream out of range");
    VBR_ENSURE(fault.kind == run::FaultKind::kTransient || fault.kind == run::FaultKind::kPermanent,
               "stream faults must be transient or permanent (stream-shaped kinds have no "
               "meaning at a generation site)");
    VBR_ENSURE(fault.times >= 1, "a scheduled fault must fire at least once");
    fault_states_[fault.stream].entries.push_back(
        FaultEntry{fault.at_sample, fault.kind, fault.times, i});
  }
  for (auto& [stream, state] : fault_states_) {
    std::stable_sort(state.entries.begin(), state.entries.end(),
                     [](const FaultEntry& a, const FaultEntry& b) {
                       return a.at_sample < b.at_sample;
                     });
  }
  std::uint64_t last_epoch = 0;
  bool first = true;
  for (const PressureEvent& event : config_.pressure_schedule) {
    VBR_ENSURE(event.level >= 0 && event.level <= kMaxLevel,
               "pressure levels run 0 (nominal) to 3 (refuse)");
    VBR_ENSURE(first || event.at_epoch > last_epoch,
               "pressure schedule epochs must be strictly increasing");
    last_epoch = event.at_epoch;
    first = false;
  }
}

AdmissionDecision OverloadGovernor::admit(std::size_t additional_streams) const {
  const std::size_t fleet = service_.config().num_streams + additional_streams;
  if (level_ >= kMaxLevel) {
    AdmissionDecision decision;
    decision.outcome = AdmissionOutcome::kRejectedDegraded;
    decision.requested_streams = fleet;
    decision.memory_budget_bytes = config_.budget.memory_bytes;
    decision.cpu_budget_samples_per_second = config_.budget.cpu_samples_per_second;
    decision.reason = "governor is at degradation level 3 (refusing admissions)";
    return decision;
  }
  return decide(service_.config(), config_.budget, fleet);
}

void OverloadGovernor::advance_round(std::size_t block) {
  VBR_ENSURE(block >= 1, "governed round block must be at least 1");
  if (config_.pressure_probe) {
    const int want = std::clamp(config_.pressure_probe(), 0, kMaxLevel);
    if (want != level_) apply_level(want);
  }
  std::size_t remaining = block;
  while (remaining > 0) {
    // Apply every transition due at the current epoch, then advance only up
    // to the next one: transitions land at exact per-stream positions, so
    // the emitted samples cannot depend on how the caller sliced rounds.
    while (next_event_ < config_.pressure_schedule.size() &&
           config_.pressure_schedule[next_event_].at_epoch <= epoch_) {
      apply_level(config_.pressure_schedule[next_event_].level);
      ++next_event_;
    }
    std::uint64_t step = remaining;
    if (next_event_ < config_.pressure_schedule.size()) {
      step = std::min<std::uint64_t>(step, config_.pressure_schedule[next_event_].at_epoch - epoch_);
    }
    if (level_ >= 2) {
      const std::size_t cap =
          config_.degraded_block != 0 ? config_.degraded_block : std::max<std::size_t>(1, block / 2);
      step = std::min<std::uint64_t>(step, cap);
    }
    service_.advance_round(static_cast<std::size_t>(step), this);
    epoch_ += step;
    remaining -= static_cast<std::size_t>(step);
  }
  // Surface a transition landing exactly on the final epoch now, so level()
  // and checkpoint_requested() reflect it without waiting for another round.
  while (next_event_ < config_.pressure_schedule.size() &&
         config_.pressure_schedule[next_event_].at_epoch <= epoch_) {
    apply_level(config_.pressure_schedule[next_event_].level);
    ++next_event_;
  }
}

void OverloadGovernor::apply_level(int level) {
  if (level >= 1 && shed_.empty() && config_.shed_fraction > 0.0) {
    // Shed the lowest-priority (highest-index: last admitted, first shed)
    // active streams. They are paused, not retired — recovery resumes each
    // one exactly where it froze.
    const std::size_t active = service_.active_streams();
    const std::size_t target =
        static_cast<std::size_t>(config_.shed_fraction * static_cast<double>(active));
    std::size_t i = service_.config().num_streams;
    while (i > 0 && shed_.size() < target) {
      --i;
      if (service_.status(i) == StreamStatus::kActive) {
        service_.pause(i);
        shed_.push_back(i);
      }
    }
  }
  if (level < 1 && !shed_.empty()) {
    for (const std::size_t stream : shed_) {
      if (service_.status(stream) == StreamStatus::kPaused) service_.resume(stream);
    }
    shed_.clear();
  }
  if (level >= kMaxLevel && level_ < kMaxLevel) checkpoint_requested_ = true;
  level_ = level;
}

OverloadGovernor::StreamFaultState* OverloadGovernor::fault_state(std::size_t stream) {
  // The map is built in the constructor and never resized afterwards, so
  // concurrent find() from worker threads is safe; each worker only
  // mutates entries of the stream it owns this round.
  const auto it = fault_states_.find(stream);
  return it == fault_states_.end() ? nullptr : &it->second;
}

bool OverloadGovernor::faults_pending(const StreamFaultState* state, std::uint64_t position,
                                      std::size_t block) const {
  if (state == nullptr) return false;
  const std::uint64_t end = position + block;
  for (const FaultEntry& entry : state->entries) {
    if (entry.remaining > 0 && entry.at_sample >= position && entry.at_sample < end) return true;
  }
  return false;
}

void OverloadGovernor::generate_with_plan(StreamingSource& source, std::size_t block,
                                          std::vector<double>& out, StreamFaultState& state,
                                          bool& threw_scheduled) {
  const std::uint64_t end = source.position() + block;
  for (FaultEntry& entry : state.entries) {
    if (entry.remaining == 0) continue;
    if (entry.at_sample < source.position() || entry.at_sample >= end) continue;
    // Emit exactly up to the fault position, then fire: the stream's
    // partial block is the same for any thread count or block slicing.
    source.next_block(static_cast<std::size_t>(entry.at_sample - source.position()), out);
    --entry.remaining;
    threw_scheduled = true;
    if (entry.kind == run::FaultKind::kTransient) {
      throw TransientError("scheduled transient fault at sample " +
                           std::to_string(entry.at_sample));
    }
    throw std::runtime_error("scheduled permanent fault at sample " +
                             std::to_string(entry.at_sample));
  }
  source.next_block(static_cast<std::size_t>(end - source.position()), out);
}

bool OverloadGovernor::generate(std::size_t stream, StreamingSource& source, std::size_t block,
                                std::vector<double>& out) {
  StreamFaultState* state = fault_state(stream);
  if (!config_.snapshot_every_round && !faults_pending(state, source.position(), block)) {
    // Fast path: no snapshot. An unscheduled throw here cannot be retried
    // bit-identically (there is no state to rewind to), so the stream
    // quarantines at the round boundary with its partial block discarded.
    const std::uint64_t start = source.position();
    try {
      source.next_block(block, out);
      return true;
    } catch (const TransientError& e) {
      out.clear();
      record_failure(StreamFailure{stream, true, start, 1,
                                   std::string(e.what()) + " (no snapshot; not retried)"});
      return false;
    } catch (const std::exception& e) {
      out.clear();
      record_failure(StreamFailure{stream, false, start, 1, e.what()});
      return false;
    }
  }
  return generate_guarded(stream, source, block, out, state);
}

bool OverloadGovernor::generate_guarded(std::size_t stream, StreamingSource& source,
                                        std::size_t block, std::vector<double>& out,
                                        StreamFaultState* state) {
  const std::uint64_t start = source.position();
  std::ostringstream snapshot_out(std::ios::binary);
  source.save(snapshot_out);
  const std::string snapshot = snapshot_out.str();
  const auto attempt_clock = std::chrono::steady_clock::now();

  for (std::size_t attempt = 1;; ++attempt) {
    bool threw_scheduled = false;
    try {
      if (state != nullptr) {
        generate_with_plan(source, block, out, *state, threw_scheduled);
      } else {
        source.next_block(block, out);
      }
      return true;
    } catch (const TransientError& e) {
      const bool out_of_attempts = attempt >= config_.policy.max_attempts;
      const bool out_of_time =
          config_.policy.source_deadline_seconds > 0.0 &&
          elapsed_seconds(attempt_clock) > config_.policy.source_deadline_seconds;
      if (out_of_attempts || out_of_time) {
        // Quarantine. A scheduled fault froze the stream at its exact
        // at_sample with the deterministic partial block already in `out`;
        // an unscheduled one rewinds to the round boundary.
        if (!threw_scheduled) {
          out.clear();
          rewind_to_snapshot(source, snapshot);
        }
        record_failure(StreamFailure{stream, true,
                                     threw_scheduled ? source.position() : start,
                                     static_cast<std::uint32_t>(attempt), e.what()});
        return false;
      }
      // Retry from the snapshot: the rewound source re-emits exactly the
      // samples it emitted on the failed attempt (engine FailurePolicy
      // semantics, generalized from Rng copies to serialized stream state).
      out.clear();
      rewind_to_snapshot(source, snapshot);
      transient_retries_.fetch_add(1, std::memory_order_relaxed);
      if (config_.policy.backoff_seconds > 0.0) {
        const double sleep_seconds =
            config_.policy.backoff_seconds * std::pow(2.0, static_cast<double>(attempt - 1));
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
      }
    } catch (const std::exception& e) {
      if (!threw_scheduled) {
        out.clear();
        rewind_to_snapshot(source, snapshot);
      }
      record_failure(StreamFailure{stream, false, threw_scheduled ? source.position() : start,
                                   static_cast<std::uint32_t>(attempt), e.what()});
      return false;
    }
  }
}

void OverloadGovernor::record_failure(StreamFailure failure) {
  const std::scoped_lock lock(failures_mutex_);
  failures_.emplace(failure.stream, std::move(failure));
}

std::vector<StreamFailure> OverloadGovernor::failures() const {
  const std::scoped_lock lock(failures_mutex_);
  std::vector<StreamFailure> out;
  out.reserve(failures_.size());
  for (const auto& [stream, failure] : failures_) out.push_back(failure);
  return out;
}

std::size_t OverloadGovernor::quarantined_streams() const {
  const std::scoped_lock lock(failures_mutex_);
  return failures_.size();
}

std::uint64_t OverloadGovernor::config_fingerprint() const {
  Fnv1a hash;
  const auto mix_u64 = [&hash](std::uint64_t v) { hash.update(&v, sizeof v); };
  const auto mix_f64 = [&hash](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    hash.update(&bits, sizeof bits);
  };
  mix_u64(config_.budget.memory_bytes);
  mix_f64(config_.budget.cpu_samples_per_second);
  mix_f64(config_.budget.queue_loss_target);
  mix_u64(config_.policy.max_attempts);
  mix_f64(config_.policy.backoff_seconds);
  mix_f64(config_.policy.source_deadline_seconds);
  mix_f64(config_.shed_fraction);
  mix_u64(config_.degraded_block);
  mix_u64(config_.snapshot_every_round ? 1 : 0);
  mix_u64(config_.stream_faults.size());
  for (const ScheduledStreamFault& fault : config_.stream_faults) {
    mix_u64(fault.stream);
    mix_u64(fault.at_sample);
    mix_u64(static_cast<std::uint64_t>(fault.kind));
    mix_u64(fault.times);
  }
  mix_u64(config_.pressure_schedule.size());
  for (const PressureEvent& event : config_.pressure_schedule) {
    mix_u64(event.at_epoch);
    mix_u64(static_cast<std::uint64_t>(event.level));
  }
  return hash.digest();
}

void OverloadGovernor::save_state(std::ostream& out) const {
  io::write_string(out, "governor");
  io::write_u64(out, config_fingerprint());
  io::write_u64(out, epoch_);
  io::write_u8(out, static_cast<std::uint8_t>(level_));
  io::write_u64(out, next_event_);
  io::write_u8(out, checkpoint_requested_ ? 1 : 0);
  io::write_u64(out, transient_retries_.load(std::memory_order_relaxed));
  std::vector<std::uint64_t> shed(shed_.begin(), shed_.end());
  io::write_u64_vector(out, shed);
  // Remaining fire counts for the fault schedule, in GovernorConfig order.
  std::vector<std::uint64_t> remaining(config_.stream_faults.size(), 0);
  for (const auto& [stream, state] : fault_states_) {
    for (const FaultEntry& entry : state.entries) remaining[entry.config_index] = entry.remaining;
  }
  io::write_u64_vector(out, remaining);
  const std::scoped_lock lock(failures_mutex_);
  io::write_u64(out, failures_.size());
  for (const auto& [stream, failure] : failures_) {
    io::write_u64(out, failure.stream);
    io::write_u8(out, failure.transient ? 1 : 0);
    io::write_u64(out, failure.position);
    io::write_u64(out, failure.attempts);
    io::write_string(out, failure.error);
  }
}

void OverloadGovernor::restore_state(std::istream& in) {
  static constexpr const char* kWhat = "OverloadGovernor::restore";
  io::read_tag(in, "governor", kWhat);
  const std::uint64_t fingerprint = io::read_u64(in, kWhat);
  if (fingerprint != config_fingerprint()) {
    throw IoError("OverloadGovernor::restore: checkpoint belongs to a different governor config");
  }
  const std::uint64_t epoch = io::read_u64(in, kWhat);
  const std::uint8_t level = io::read_u8(in, kWhat);
  if (level > static_cast<std::uint8_t>(kMaxLevel)) {
    throw IoError("OverloadGovernor::restore: corrupt degradation level");
  }
  const std::uint64_t next_event = io::read_u64(in, kWhat);
  if (next_event > config_.pressure_schedule.size()) {
    throw IoError("OverloadGovernor::restore: schedule progress out of range");
  }
  const std::uint8_t checkpoint_requested = io::read_u8(in, kWhat);
  if (checkpoint_requested > 1) {
    throw IoError("OverloadGovernor::restore: corrupt checkpoint flag");
  }
  const std::uint64_t retries = io::read_u64(in, kWhat);
  const std::size_t num_streams = service_.config().num_streams;
  const std::vector<std::uint64_t> shed = io::read_u64_vector(in, num_streams, kWhat);
  for (const std::uint64_t stream : shed) {
    if (stream >= num_streams) throw IoError("OverloadGovernor::restore: shed stream out of range");
  }
  const std::vector<std::uint64_t> remaining =
      io::read_u64_vector(in, config_.stream_faults.size(), kWhat);
  if (remaining.size() != config_.stream_faults.size()) {
    throw IoError("OverloadGovernor::restore: fault schedule size mismatch");
  }
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    if (remaining[i] > config_.stream_faults[i].times) {
      throw IoError("OverloadGovernor::restore: fault fire count exceeds schedule");
    }
  }
  const std::size_t failure_count =
      io::read_count(in, num_streams, "OverloadGovernor::restore failures");
  std::map<std::size_t, StreamFailure> failures;
  for (std::size_t i = 0; i < failure_count; ++i) {
    StreamFailure failure;
    failure.stream = io::read_u64(in, kWhat);
    if (failure.stream >= num_streams) {
      throw IoError("OverloadGovernor::restore: failed stream out of range");
    }
    const std::uint8_t transient = io::read_u8(in, kWhat);
    if (transient > 1) throw IoError("OverloadGovernor::restore: corrupt failure kind");
    failure.transient = transient == 1;
    failure.position = io::read_u64(in, kWhat);
    failure.attempts = static_cast<std::uint32_t>(io::read_u64(in, kWhat));
    failure.error = io::read_string(in, 4096, kWhat);
    failures.emplace(failure.stream, std::move(failure));
  }

  // All fields validated: commit.
  epoch_ = epoch;
  level_ = static_cast<int>(level);
  next_event_ = static_cast<std::size_t>(next_event);
  checkpoint_requested_ = checkpoint_requested == 1;
  transient_retries_.store(retries, std::memory_order_relaxed);
  shed_.assign(shed.begin(), shed.end());
  for (auto& [stream, state] : fault_states_) {
    for (FaultEntry& entry : state.entries) entry.remaining = remaining[entry.config_index];
  }
  {
    const std::scoped_lock lock(failures_mutex_);
    failures_ = std::move(failures);
  }
}

}  // namespace vbr::service
