#include "vbr/service/service_checkpoint.hpp"

#include <fstream>
#include <sstream>

#include "vbr/common/atomic_file.hpp"
#include "vbr/common/error.hpp"

namespace vbr::service {

run::EnvelopeSpec service_checkpoint_envelope() {
  // The payload bound allows a million hosking streams at a generous
  // horizon (a few hundred bytes each) while keeping a forged size field
  // from driving a multi-GB allocation under the fuzzer's RSS limit.
  return {kServiceCheckpointMagic, kServiceCheckpointVersion, std::uint64_t{1} << 31,
          "service checkpoint"};
}

void save_service_checkpoint(const std::string& path, const TrafficService& service) {
  std::ostringstream payload(std::ios::binary);
  service.save_state(payload);
  write_file_atomic(path, run::seal_envelope(service_checkpoint_envelope(), payload.str()),
                    /*durable=*/true);
}

void load_service_checkpoint(const std::string& path, TrafficService& service) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open service checkpoint: " + path);
  const std::string body = run::open_envelope(in, service_checkpoint_envelope(), path);
  std::istringstream payload(body, std::ios::binary);
  service.restore_state(payload);
}

}  // namespace vbr::service
