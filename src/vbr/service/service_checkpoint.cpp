#include "vbr/service/service_checkpoint.hpp"

#include <fstream>
#include <sstream>

#include "vbr/common/atomic_file.hpp"
#include "vbr/common/serialize.hpp"
#include "vbr/common/error.hpp"

namespace vbr::service {

run::EnvelopeSpec service_checkpoint_envelope() {
  // The payload bound allows a million hosking streams at a generous
  // horizon (a few hundred bytes each) while keeping a forged size field
  // from driving a multi-GB allocation under the fuzzer's RSS limit.
  return {kServiceCheckpointMagic, kServiceCheckpointVersion, std::uint64_t{1} << 31,
          "service checkpoint"};
}

void save_service_checkpoint(const std::string& path, const TrafficService& service,
                             const OverloadGovernor* governor) {
  std::ostringstream payload(std::ios::binary);
  service.save_state(payload);
  io::write_u8(payload, governor != nullptr ? 1 : 0);
  if (governor != nullptr) governor->save_state(payload);
  write_file_atomic(path, run::seal_envelope(service_checkpoint_envelope(), payload.str()),
                    /*durable=*/true);
}

void load_service_checkpoint(const std::string& path, TrafficService& service,
                             OverloadGovernor* governor) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open service checkpoint: " + path);
  const std::string body = run::open_envelope(in, service_checkpoint_envelope(), path);
  std::istringstream payload(body, std::ios::binary);
  service.restore_state(payload);
  const std::uint8_t has_governor = io::read_u8(payload, "load_service_checkpoint");
  if (has_governor > 1) throw IoError("service checkpoint: corrupt governor flag");
  if ((has_governor == 1) != (governor != nullptr)) {
    throw IoError(has_governor == 1
                      ? "service checkpoint carries governor state but this run is ungoverned"
                      : "service checkpoint has no governor state but this run is governed");
  }
  if (governor != nullptr) governor->restore_state(payload);
}

}  // namespace vbr::service
