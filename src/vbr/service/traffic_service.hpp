// TrafficService: one long-lived driver multiplexing N endless streaming
// VBR sources — the production shape of ROADMAP item 3, where the paper's
// model serves traffic for millions of users rather than emitting batch
// trace files.
//
// The service owns N StreamingSource states and advances them round-robin:
// advance_round(block) gives every active stream `block` more samples.
// Memory is O(scratch_chunk * block + sum of per-stream states) — blocks
// are generated into a bounded pool of scratch buffers that are recycled
// every chunk, never materialized for the whole fleet at once.
//
// Determinism: per-stream Rngs are derived from the seed by split() in
// stream order before any work is dispatched (the engine's guarantee), and
// every round folds results sequentially in stream order — generation is
// parallel, reduction is not — so the results hash, the sink state, and the
// queue state are bit-identical for any thread count.
//
// Feeds: each stream's block is pushed zero-copy (a span over the scratch
// buffer) into the service's streaming sink, and the per-frame aggregate
// across streams — the multiplexer arrival process of Section 5.1 — is
// offered to an optional net::FluidQueue. Aggregation uses one Kahan
// accumulator per frame offset so a million-term sum stays exact enough to
// reproduce across checkpoints (the compensation word is part of the
// state).
//
// Failure semantics: pause() freezes a stream (its Rng state is retained,
// resume() continues bit-exactly); retire() permanently frees the stream's
// state and its memory. save_state()/restore_state() serialize the complete
// service — every live stream, the sink, the queue, the hash, and the
// Kahan totals — and the VBRSRVC1 envelope wrapper in service_checkpoint.hpp
// makes that crash-safe on disk (SIGKILL + --resume reproduces the
// uninterrupted run's results_hash bit-for-bit; scripts/crash_soak.sh
// --service drills exactly this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "vbr/common/checksum.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/model/vbr_source.hpp"
#include "vbr/net/fluid_queue.hpp"
#include "vbr/service/streaming_source.hpp"
#include "vbr/stream/moments.hpp"

namespace vbr::service {

enum class StreamStatus : std::uint8_t {
  kActive = 0,
  kPaused = 1,
  kRetired = 2,
  /// Frozen by the overload governor after a generation fault. Like
  /// kPaused the stream state is retained (and checkpointed), but the
  /// lifecycle API will not resume it — quarantine is the governor's
  /// verdict, not a scheduling decision.
  kQuarantined = 3,
};

/// Generation hook for the overload governor (service/governor.hpp): when
/// advance_round is given a governor, every active stream's block is
/// produced through generate() instead of a direct next_block() call.
/// Called concurrently for distinct streams, never concurrently for the
/// same stream. `out` is empty on entry; return false to quarantine the
/// stream after this round — `out` may then hold a deterministic partial
/// block (the samples emitted before the fault), which is still folded
/// into the stream's digest.
class StreamGovernor {
 public:
  virtual ~StreamGovernor() = default;
  virtual bool generate(std::size_t stream, StreamingSource& source, std::size_t block,
                        std::vector<double>& out) = 0;
};

/// Everything needed to reproduce a service run. Stream i's Rng is the
/// i-th split() of Rng(seed), exactly like engine::GenerationPlan sources.
struct ServiceConfig {
  std::size_t num_streams = 1;
  std::uint64_t seed = 0;
  model::VbrModelParams params;
  model::ModelVariant variant = model::ModelVariant::kFull;
  /// Streaming backend; davies-harte is rejected (no streaming form).
  model::GeneratorBackend backend = model::GeneratorBackend::kHosking;
  StreamingTuning tuning;
  /// Worker threads; 0 means hardware concurrency. Never affects output.
  std::size_t threads = 0;
  /// Frame interval for the multiplexer feed.
  double frame_seconds = 1.0 / 24.0;
  /// When capacity > 0, the per-frame aggregate is offered to a fluid
  /// queue with this service rate (bytes/second) and buffer (bytes).
  double queue_capacity_bytes_per_sec = 0.0;
  double queue_buffer_bytes = 0.0;
};

class TrafficService {
 public:
  /// Builds all num_streams stream states (this is the expensive, memory-
  /// proportional step). Throws vbr::InvalidArgument on a bad config.
  explicit TrafficService(const ServiceConfig& config);

  const ServiceConfig& config() const { return config_; }

  /// Advance every active stream by `block` samples, in stream order.
  /// With a governor, each block is produced through the governor's
  /// generate() hook and a false return quarantines that stream at the end
  /// of the round (its partial block, if any, is folded normally).
  void advance_round(std::size_t block, StreamGovernor* governor = nullptr);

  /// Freeze a stream; its state is retained and resume() continues the
  /// sample sequence bit-exactly where it stopped.
  void pause(std::size_t stream);
  void resume(std::size_t stream);
  /// Permanently drop a stream and free its state. Irreversible.
  void retire(std::size_t stream);
  StreamStatus status(std::size_t stream) const;
  /// Samples emitted by one live stream; throws for a retired stream.
  std::uint64_t stream_position(std::size_t stream) const;
  std::size_t active_streams() const;

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t total_samples() const { return total_samples_; }
  /// Total generated traffic volume (sum of every sample), Kahan-exact.
  double total_bytes() const { return total_bytes_.value(); }
  /// Run witness: each stream keeps an FNV-1a digest over the bit patterns
  /// of its own emitted samples, and results_hash() folds the per-stream
  /// digests in stream order. Depending only on what each stream emitted —
  /// never on how rounds interleaved the work — the hash is invariant to
  /// block size, thread count, and pause scheduling; the SIGKILL soak
  /// compares exactly this value.
  std::uint64_t results_hash() const;
  /// One stream's own FNV-1a digest (the per-stream term results_hash()
  /// folds). Lets the fault-isolation tests assert that healthy streams
  /// are bit-identical to a fault-free run, stream by stream.
  std::uint64_t stream_digest(std::size_t stream) const;

  const stream::StreamingMoments& moments() const { return moments_; }
  /// Null unless the config enables the queue feed.
  const net::FluidQueue* queue() const { return queue_.get(); }

  /// Serialize the complete service state (config fingerprint + counters +
  /// every live stream + sink + queue). restore_state() on a service built
  /// from the same config reproduces the run bit-for-bit. On restore
  /// failure (vbr::IoError) the service may hold partial state — discard
  /// it, as the campaign runner discards a half-restored sink chain.
  void save_state(std::ostream& out) const;
  void restore_state(std::istream& in);

 private:
  ServiceConfig config_;
  std::vector<std::unique_ptr<StreamingSource>> streams_;
  std::vector<StreamStatus> status_;
  stream::StreamingMoments moments_;
  std::unique_ptr<net::FluidQueue> queue_;
  KahanSum total_bytes_;
  /// Per-stream FNV-1a states (raw digests; retired streams keep theirs).
  std::vector<std::uint64_t> stream_hash_;
  std::uint64_t rounds_ = 0;
  std::uint64_t total_samples_ = 0;
  /// Recycled per-chunk generation buffers (bounded scratch pool).
  std::vector<std::vector<double>> scratch_;
  /// Per-chunk quarantine verdicts from the governor hook (one byte per
  /// scratch slot; each worker writes only its own slot).
  std::vector<std::uint8_t> quarantine_pending_;
  /// Per-frame-offset aggregate accumulators, reset every round.
  std::vector<KahanSum> aggregate_;
};

}  // namespace vbr::service
