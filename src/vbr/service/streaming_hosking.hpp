// Streaming Hosking: the paper's exact Durbin-Levinson recursion with the
// predictor capped at a configurable horizon m, so one endless fARIMA
// stream costs O(m) memory instead of the batch generator's O(n).
//
// For k < m the draw is arithmetically identical to model::HoskingGenerator
// (same Kahan-compensated sums, same invariance checks, same Rng draw
// order), which is what makes the full-state equivalence test bit-exact.
// From k >= m the predictor freezes at order m: the stream becomes an AR(m)
// process whose first m autocorrelations equal the fARIMA values exactly
// (Yule-Walker) and whose innovation variance carries the documented
// truncation bias ~ v_inf d^2 / m (streaming_source.hpp header note).
//
// The order-1..m coefficient table and innovation variances depend only on
// (H, variance, m), so all streams of one service share a single immutable
// table through a process-wide cache — per-stream state is just the
// m-sample ring, the Rng, and a position counter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "vbr/common/rng.hpp"
#include "vbr/model/hosking.hpp"
#include "vbr/service/streaming_source.hpp"

namespace vbr::service {

/// Immutable shared Durbin-Levinson state for one (H, variance, horizon).
struct HoskingCoeffTable {
  /// phi[k-1] holds the order-k predictor coefficients phi_{k,1..k}.
  std::vector<std::vector<double>> phi;
  /// v[k] is the innovation variance after step k, k = 0..horizon.
  std::vector<double> v;
};

class StreamingHosking final : public StreamingSource {
 public:
  /// Consumes one split() from `parent` (the hosking_farima convention).
  /// Throws vbr::InvalidArgument for H outside (0, 1), variance <= 0, or
  /// horizon == 0.
  StreamingHosking(const model::HoskingOptions& options, std::size_t horizon, Rng& parent);

  using StreamingSource::next_block;
  void next_block(std::size_t n, std::vector<double>& out) override;
  std::uint64_t position() const override { return position_; }
  const char* kind() const override { return "hosking-stream"; }
  void save(std::ostream& out) const override;
  void restore(std::istream& in) override;

  std::size_t horizon() const { return horizon_; }
  /// Innovation variance of the *next* draw (equals the batch generator's
  /// innovation_variance() while position <= horizon).
  double innovation_variance() const;

  /// Process-wide coefficient-table cache introspection (mirrors the
  /// Davies-Harte / Paxson cache helpers; caching never changes output).
  static std::size_t coeff_cache_size();
  static void coeff_cache_clear();

 private:
  model::HoskingOptions options_;
  std::size_t horizon_;
  std::shared_ptr<const HoskingCoeffTable> coeffs_;
  Rng rng_;
  std::vector<double> ring_;  ///< last min(position, horizon) samples
  std::uint64_t position_ = 0;

  double next_sample();
};

}  // namespace vbr::service
