// Crash-safe on-disk persistence for a TrafficService: the service payload
// (TrafficService::save_state) wrapped in the same CRC-guarded envelope
// format the campaign checkpoint uses (run/envelope.hpp), under its own
// magic:
//
//   8 bytes  magic  "VBRSRVC1"
//   u32      version (currently 2)
//   u64      payload size
//   u32      CRC-32 of the payload
//   payload  TrafficService state (config fingerprint + counters + hash +
//            queue + sink + every live stream), then a u8 governor flag
//            and, when set, the OverloadGovernor state (ladder position,
//            shed set, failure records, remaining fault schedule) so a
//            checkpoint taken mid-degradation resumes bit-identically
//
// Version 2 added the governor flag; version-1 files are rejected at the
// envelope (no deployed checkpoints outlive a run, so no migration path).
//
// Writes go through write_file_atomic, so a SIGKILL mid-save leaves the
// previous complete checkpoint in place; loads verify magic, version, size
// bound, and CRC before a single payload byte is parsed, and the payload
// parse itself validates the config fingerprint and every count against
// the live service. scripts/crash_soak.sh --service kills serve_traffic at
// random instants and asserts the resumed results_hash is bit-identical to
// an uninterrupted run.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "vbr/run/envelope.hpp"
#include "vbr/service/governor.hpp"
#include "vbr/service/traffic_service.hpp"

namespace vbr::service {

inline constexpr std::array<char, 8> kServiceCheckpointMagic = {'V', 'B', 'R', 'S',
                                                                'R', 'V', 'C', '1'};
inline constexpr std::uint32_t kServiceCheckpointVersion = 2;

/// Envelope identity; exposed so the fuzz harness can seal hostile payloads
/// with a valid CRC (the dual-path corpus pattern).
run::EnvelopeSpec service_checkpoint_envelope();

/// Atomically write the complete service state to `path`, with the
/// governing OverloadGovernor's state when one is attached.
void save_service_checkpoint(const std::string& path, const TrafficService& service,
                             const OverloadGovernor* governor = nullptr);

/// Load a checkpoint into a service built from the same config (and a
/// governor built from the same GovernorConfig, when the run is governed).
/// Throws vbr::IoError on any envelope or payload defect — including a
/// governed checkpoint loaded without a governor or vice versa; on a
/// payload defect the service may hold partial state and must be discarded
/// (the CLI rebuilds).
void load_service_checkpoint(const std::string& path, TrafficService& service,
                             OverloadGovernor* governor = nullptr);

}  // namespace vbr::service
