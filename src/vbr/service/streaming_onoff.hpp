// Streaming M/G/infinity on/off source: the structurally-LRD generator is
// naturally endless — its whole state is the set of active-session end
// times plus the next Poisson arrival clock.
//
// The process law, calibration, and standardization are identical to
// model::onoff_aggregate (same equilibrium start, same lag-1 white-noise
// calibration), but the *draw order* differs: the batch generator draws all
// arrivals for the horizon up front and the calibration noise in one final
// pass, while the stream interleaves arrival/duration draws with per-frame
// noise as the clock advances. The two are therefore equal in distribution
// but not bit-for-bit; service_test pins the streaming version's fidelity
// with the same stats/lrd_fidelity judge the zoo uses.
//
// Expected state: Poisson(mean_active_sessions) live end times — the heap
// is stored as a plain vector (std::push_heap / std::pop_heap) so a
// checkpoint serializes the container verbatim and a restored stream pops
// in exactly the original order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "vbr/common/rng.hpp"
#include "vbr/model/onoff_source.hpp"
#include "vbr/service/streaming_source.hpp"

namespace vbr::service {

class StreamingOnOff final : public StreamingSource {
 public:
  /// Consumes one split() from `parent`; draws the equilibrium initial
  /// sessions immediately (batch draw phases 1-2, then the first arrival
  /// gap). Throws vbr::InvalidArgument for H outside (0.5, 1) or
  /// non-positive session mean/minimum/variance.
  StreamingOnOff(const model::OnOffOptions& options, Rng& parent);

  using StreamingSource::next_block;
  void next_block(std::size_t n, std::vector<double>& out) override;
  std::uint64_t position() const override { return position_; }
  const char* kind() const override { return "onoff-stream"; }
  void save(std::ostream& out) const override;
  void restore(std::istream& in) override;

  std::size_t active_sessions() const { return heap_.size(); }

 private:
  model::OnOffOptions options_;
  // Derived calibration constants (pure functions of options_).
  double alpha_ = 0.0;
  double k_ = 0.0;
  double lambda_ = 0.0;
  double mean_count_ = 0.0;  ///< lambda * mu = mean_active_sessions
  double noise_sd_ = 0.0;
  double scale_ = 0.0;
  Rng rng_;
  std::vector<double> heap_;  ///< min-heap of session end times
  double next_arrival_ = 0.0;
  std::uint64_t position_ = 0;

  double next_sample();
};

}  // namespace vbr::service
