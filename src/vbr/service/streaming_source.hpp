// Unbounded-horizon streaming sources: the paper's generators, made endless.
//
// The batch generators in model/ produce a fixed-length realization and
// stop; a production traffic service (ROADMAP item 3) instead needs each
// source to emit samples *forever* in O(block + state) memory, where the
// per-stream state is small enough that millions of concurrent streams fit
// in RAM. A StreamingSource is exactly that: next_block(n) appends the next
// n samples of one endless realization, and the sample sequence depends
// only on the construction parameters and the Rng stream — never on how
// the caller slices it into blocks (block-size invariance, pinned by
// tests/service_test).
//
// Three block-incremental backends (factory below):
//
//   "hosking"  truncated Durbin-Levinson recursion. Warmup (k < horizon m)
//              is arithmetically identical to model::HoskingGenerator, so
//              at full state (m >= n) the stream is bit-for-bit the batch
//              realization; past the horizon the predictor freezes at
//              order m (an AR(m) tail). State: m-sample ring + Rng.
//   "paxson"   blockwise spectral synthesis: fixed power-of-two windows
//              stitched over an equal-power crossfade (cos/sin weights,
//              a^2 + b^2 = 1, so the blend of two independent unit-variance
//              Gaussians keeps unit variance). State: one window + one
//              composed segment.
//   "onoff"    the M/G/infinity session superposition, which is naturally
//              streaming: a heap of active-session end times plus the next
//              arrival clock. State: O(mean_active_sessions) expected.
//
// Determinism contract (the engine's): every backend consumes only the Rng
// stream it derives at construction (one split() from the caller's
// per-stream Rng, mirroring the batch hosking_farima convention), so the
// service's outputs are bit-identical for any thread count, and save() +
// restore() + continued blocks reproduce the uninterrupted stream exactly
// (0 ulp), including mid-normal-pair Rng states (Rng::save).
//
// Truncation-bias bound (hosking horizon m): fARIMA(0,d,0) has partial
// autocorrelation phi_kk = d / (k - d), so freezing at order m inflates
// the innovation variance by v_m - v_inf = v_inf (prod_{k>m} (1-phi_kk^2)^-1
// - 1) ~ v_inf d^2 / m, and the realized ACF matches the model *exactly*
// through lag m (Yule-Walker property of the order-m predictor) with only
// the hyperbolic tail beyond lag m flattened toward the AR(m) decay. The
// default m = 64 keeps the variance bias under 0.4% for every H < 0.95;
// DESIGN.md section 12 derives the bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "vbr/common/rng.hpp"
#include "vbr/model/vbr_source.hpp"

namespace vbr::service {

/// One endless sample stream in bounded memory.
class StreamingSource {
 public:
  virtual ~StreamingSource() = default;

  /// Append the next `n` samples of the stream to `out` (appending, so a
  /// caller can compose many streams into one buffer without copies).
  /// n == 0 is a no-op.
  virtual void next_block(std::size_t n, std::vector<double>& out) = 0;

  /// Convenience form returning a fresh vector.
  std::vector<double> next_block(std::size_t n) {
    std::vector<double> out;
    out.reserve(n);
    next_block(n, out);
    return out;
  }

  /// Samples emitted so far.
  virtual std::uint64_t position() const = 0;

  /// Stable identifier ("hosking-stream", ...) for errors and checkpoints.
  virtual const char* kind() const = 0;

  /// Serialize the complete stream state (kind tag + configuration +
  /// every state word). restore() on a source constructed with the same
  /// configuration reproduces the stream bit-for-bit: the restored source
  /// emits exactly the samples the original would have emitted next.
  virtual void save(std::ostream& out) const = 0;

  /// Inverse of save(). Throws vbr::IoError on a kind/configuration
  /// mismatch, truncation, or forged lengths; on failure this source is
  /// left unchanged.
  virtual void restore(std::istream& in) = 0;
};

/// Backend-specific streaming knobs; the defaults suit a mass fleet
/// (small per-stream state) and every knob trades memory for tail fidelity.
struct StreamingTuning {
  /// Hosking predictor horizon m (ring size, samples). Larger horizons
  /// track the hyperbolic ACF tail further at m doubles per stream;
  /// m >= realization length reproduces batch Hosking bit-for-bit.
  std::size_t hosking_horizon = 64;
  /// Paxson synthesis window (power of two, samples per FFT).
  std::size_t paxson_window = 4096;
  /// Paxson stitch overlap V (1 <= V <= window / 2).
  std::size_t paxson_overlap = 512;
  /// On/off mean concurrent sessions (marginal Gaussianity knob).
  double onoff_mean_active_sessions = 256.0;
  /// On/off minimum session duration in frames.
  double onoff_min_session_frames = 1.0;
};

/// Construct the streaming Gaussian(-ish) LRD core for one backend.
/// Consumes one split() from `parent` (the caller's per-stream Rng).
/// Throws vbr::InvalidArgument for invalid H/variance/tuning, and for
/// kDaviesHarte, whose circulant embedding is inherently whole-trace — use
/// hosking (exact), paxson (fast), or onoff (structural) for streaming.
std::unique_ptr<StreamingSource> make_streaming_core(model::GeneratorBackend backend,
                                                     double hurst, double variance,
                                                     const StreamingTuning& tuning,
                                                     Rng& parent);

/// Construct a complete streaming VBR source: the paper's model variants
/// over a streaming core (kFull pushes the core through the shared
/// Gamma/Pareto marginal map; kIidGammaPareto needs no core at all).
/// Consumes `parent` exactly as the batch VbrVideoSourceModel::generate
/// consumes its Rng, so full-horizon hosking streams and iid streams are
/// bit-identical to their batch counterparts.
std::unique_ptr<StreamingSource> make_streaming_source(const model::VbrModelParams& params,
                                                       model::ModelVariant variant,
                                                       model::GeneratorBackend backend,
                                                       const StreamingTuning& tuning,
                                                       Rng& parent);

}  // namespace vbr::service
