#include "vbr/service/streaming_onoff.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"

namespace vbr::service {
namespace {

// Session-count ceiling for checkpoint reads: the live set is Poisson
// around mean_active_sessions with a heavy-tailed straggler fringe, so two
// decades of headroom rejects forged counts without ever tripping on a
// legitimate state.
std::uint64_t heap_read_cap(double mean_active_sessions) {
  const double cap = 100.0 * mean_active_sessions + 4096.0;
  return static_cast<std::uint64_t>(std::min(cap, 1e12));
}

}  // namespace

StreamingOnOff::StreamingOnOff(const model::OnOffOptions& options, Rng& parent)
    : options_(options), rng_(parent.split()) {
  VBR_ENSURE(options.hurst > 0.5 && options.hurst < 1.0,
             "on/off superposition needs H in (0.5, 1)");
  VBR_ENSURE(options.mean_active_sessions > 0.0, "mean active sessions must be positive");
  VBR_ENSURE(options.min_session_frames > 0.0, "minimum session duration must be positive");
  VBR_ENSURE(options.variance > 0.0, "variance must be positive");

  // Same constants as onoff_aggregate (header note there derives them).
  alpha_ = 3.0 - 2.0 * options.hurst;
  k_ = options.min_session_frames;
  const double mu = alpha_ * k_ / (alpha_ - 1.0);
  lambda_ = options.mean_active_sessions / mu;
  mean_count_ = lambda_ * mu;
  const double tail_a = lambda_ * std::pow(k_, alpha_) / (alpha_ - 1.0);
  const double rho1 = std::pow(2.0, 2.0 * options.hurst - 1.0) - 1.0;
  const double total_var = tail_a / rho1;
  noise_sd_ = std::sqrt(std::max(0.0, total_var - mean_count_));
  scale_ = std::sqrt(options.variance) / std::sqrt(total_var);

  // Equilibrium start, batch draw phases (1)-(2): Poisson(lambda mu)
  // in-progress sessions, each with a forward-recurrence residual (> 0, so
  // each is active at frame 0), then the first arrival gap.
  std::size_t initial = 0;
  double acc = rng_.exponential(1.0);
  while (acc <= options.mean_active_sessions) {
    ++initial;
    // Bounded Poisson-count draw (~mean_active_sessions terms, once per
    // stream), kept arithmetically identical to the batch equilibrium
    // construction in onoff_source.cpp.
    // NOLINTNEXTLINE(vbr-naive-accumulation): bounded one-shot count draw
    acc += rng_.exponential(1.0);
  }
  heap_.reserve(initial + 16);
  for (std::size_t i = 0; i < initial; ++i) {
    heap_.push_back(model::pareto_forward_recurrence(k_, alpha_, rng_));
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  next_arrival_ = rng_.exponential(lambda_);
}

double StreamingOnOff::next_sample() {
  const auto now = static_cast<double>(position_);
  // A session on [s, e) is active at integer frame j iff s <= j < e (the
  // batch difference-array marks exactly ceil(s) .. ceil(e) - 1).
  while (!heap_.empty() && heap_.front() <= now) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
  while (next_arrival_ <= now) {
    const double start = next_arrival_;
    const double end = start + rng_.pareto(k_, alpha_);
    if (end > now) {
      heap_.push_back(end);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    }
    next_arrival_ = start + rng_.exponential(lambda_);
  }
  const auto count = static_cast<double>(heap_.size());
  ++position_;
  return scale_ * (count - mean_count_ + noise_sd_ * rng_.normal());
}

void StreamingOnOff::next_block(std::size_t n, std::vector<double>& out) {
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next_sample());
}

void StreamingOnOff::save(std::ostream& out) const {
  io::write_string(out, kind());
  io::write_f64(out, options_.hurst);
  io::write_f64(out, options_.mean_active_sessions);
  io::write_f64(out, options_.min_session_frames);
  io::write_f64(out, options_.variance);
  io::write_u64(out, position_);
  io::write_f64(out, next_arrival_);
  rng_.save(out);
  io::write_f64_vector(out, heap_);
}

void StreamingOnOff::restore(std::istream& in) {
  io::read_tag(in, kind(), "StreamingOnOff::restore");
  const double hurst = io::read_f64(in, "StreamingOnOff::restore");
  const double mean_active = io::read_f64(in, "StreamingOnOff::restore");
  const double min_session = io::read_f64(in, "StreamingOnOff::restore");
  const double variance = io::read_f64(in, "StreamingOnOff::restore");
  if (hurst != options_.hurst || mean_active != options_.mean_active_sessions ||
      min_session != options_.min_session_frames || variance != options_.variance) {
    throw IoError("StreamingOnOff::restore: configuration mismatch");
  }
  const std::uint64_t position = io::read_u64(in, "StreamingOnOff::restore");
  const double next_arrival = io::read_f64(in, "StreamingOnOff::restore");
  if (!std::isfinite(next_arrival) || next_arrival < 0.0) {
    throw IoError("StreamingOnOff::restore: corrupt arrival clock");
  }
  Rng rng;
  rng.restore(in);
  std::vector<double> heap = io::read_f64_vector(
      in, heap_read_cap(options_.mean_active_sessions), "StreamingOnOff::restore sessions");
  for (const double end : heap) {
    if (!std::isfinite(end) || end <= 0.0) {
      throw IoError("StreamingOnOff::restore: corrupt session end time");
    }
  }
  if (!std::is_heap(heap.begin(), heap.end(), std::greater<>{})) {
    throw IoError("StreamingOnOff::restore: session set is not a heap");
  }
  position_ = position;
  next_arrival_ = next_arrival;
  rng_ = rng;
  heap_ = std::move(heap);
}

}  // namespace vbr::service
