// OverloadGovernor: the layer that turns the streaming service from
// "restartable" into "keeps serving while parts of it fail".
//
// A TrafficService is crash-safe (SIGKILL + resume is bit-identical) but
// not overload-safe: one throwing backend takes down the whole
// advance_round, and the only resource policy is a hard RSS abort in the
// CLI. For H ~ 0.8 sources that is the wrong shape — long-range dependence
// means sustained excursions far above the mean are *expected* (the
// paper's Section 5 queueing results exist precisely because provisioning
// for the mean fails), so the serving layer must be engineered to degrade,
// not crash. The governor adds three behaviours around the service, all
// deterministic under a seeded schedule:
//
//   1. Budgeted admission. A fleet is admitted against explicit memory /
//      CPU / queue-loss budgets using a per-backend cost model calibrated
//      from bench_service (~0.85 KiB/stream for hosking at the default
//      horizon). Rejections are structured AdmissionDecision values, never
//      exceptions: the caller learns the projected cost, the budget, and
//      which resource refused.
//
//   2. Per-stream fault isolation. A backend throw during next_block()
//      quarantines *that stream* while the rest of the fleet keeps
//      serving. TransientError is retried with exponential backoff from a
//      snapshot of the stream's serialized state (the streaming
//      generalization of the engine FailurePolicy's retry-from-Rng-copy:
//      a retried stream is bit-identical to one that never faulted);
//      exhausted retries and permanent errors become structured
//      StreamFailure records. Scheduled faults fire at exact per-stream
//      sample positions, so a quarantined stream freezes having emitted
//      exactly the same samples for any thread count or block size.
//
//   3. Deterministic graceful degradation. Pressure arrives either from a
//      seeded schedule (epochs measured in per-stream samples — the
//      deterministic mode every test and soak uses) or from a live probe
//      (RSS / deadline — the production mode). The governor answers with a
//      documented ladder, applied and released in order:
//
//        level 1  shed: pause the lowest-priority (highest-index) fraction
//                 of active streams; they resume exactly where they froze
//                 when pressure clears.
//        level 2  shrink: cap the per-round block so scratch memory and
//                 checkpoint latency fall (output-neutral by the service's
//                 block-size invariance).
//        level 3  refuse: reject new admissions and request a checkpoint
//                 so the supervisor can restart-with-resume instead of
//                 losing work.
//
// Determinism contract (pinned by tests/governor_test.cpp and the
// crash_soak --service --overload phase): for a fixed GovernorConfig with
// a seeded fault/pressure schedule, results_hash() after a fixed number of
// governed samples is invariant to thread count and to how the caller
// slices rounds, and SIGKILL + resume mid-degradation reproduces the
// uninterrupted run bit-for-bit. The live-probe mode trades this guarantee
// for real feedback and is never used in tests.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "vbr/engine/engine.hpp"
#include "vbr/run/fault_injection.hpp"
#include "vbr/service/traffic_service.hpp"

namespace vbr::service {

/// Why an admission request was accepted or refused.
enum class AdmissionOutcome : std::uint8_t {
  kAdmitted = 0,
  kRejectedMemory = 1,    ///< projected stream state exceeds the memory budget
  kRejectedCpu = 2,       ///< projected sample rate exceeds the CPU budget
  kRejectedLoss = 3,      ///< analytic queue loss would exceed the target
  kRejectedDegraded = 4,  ///< the governor is at ladder level 3 (refuse)
};

const char* admission_outcome_name(AdmissionOutcome outcome);

/// A structured admission verdict: never thrown, always returned, so a
/// caller can report "why not" with the numbers attached.
struct AdmissionDecision {
  AdmissionOutcome outcome = AdmissionOutcome::kAdmitted;
  std::size_t requested_streams = 0;
  /// Projected resident stream-state bytes for the whole fleet if admitted.
  std::uint64_t projected_memory_bytes = 0;
  std::uint64_t memory_budget_bytes = 0;  ///< 0 = unbounded
  /// Projected steady-state sample rate (streams / frame_seconds).
  double projected_samples_per_second = 0.0;
  double cpu_budget_samples_per_second = 0.0;  ///< 0 = unbounded
  std::string reason;

  bool admitted() const { return outcome == AdmissionOutcome::kAdmitted; }
};

/// Explicit resource budgets for admission. Zero means "unbounded" for
/// that axis, so the default budget admits everything.
struct ResourceBudget {
  std::uint64_t memory_bytes = 0;
  double cpu_samples_per_second = 0.0;
  /// When > 0 and the config enables the queue feed, gate admission on the
  /// analytic bufferless loss fraction (net::BufferlessAdmission over the
  /// paper's N-fold Gamma/Pareto convolution) staying at or under this
  /// target. The tabulated convolution is O(N * table), so the gate only
  /// applies up to kLossGateMaxStreams sources; beyond that the memory and
  /// CPU budgets govern.
  double queue_loss_target = 0.0;
};

/// Largest fleet the analytic loss gate will evaluate (see ResourceBudget).
inline constexpr std::size_t kLossGateMaxStreams = 2048;

/// Per-stream resident state cost model (bytes), calibrated against
/// bench_service RSS measurements: hosking carries an m-sample ring plus
/// predictor tables (~0.85 KiB at the default m = 64), paxson a composed
/// window plus crossfade overlap, onoff a heap sized by the expected
/// session concurrency. Includes the service's own per-stream overhead
/// (pointer, status, digest, marginal state).
std::uint64_t stream_state_bytes(model::GeneratorBackend backend, const StreamingTuning& tuning);

/// Build-time admission gate: would this fleet fit these budgets? Pure
/// function of the config — serve_traffic consults it before constructing
/// the (memory-proportional) TrafficService.
AdmissionDecision admit_fleet(const ServiceConfig& config, const ResourceBudget& budget);

/// One stream quarantined by the governor: which stream, what finally
/// stopped it, where it froze, and how hard the governor tried.
struct StreamFailure {
  std::size_t stream = 0;
  /// True when a TransientError exhausted the retry policy; false for a
  /// permanent (non-transient) error.
  bool transient = false;
  /// Per-stream samples emitted when the stream froze. For a scheduled
  /// fault this is exactly the fault's at_sample for any thread count or
  /// block size; for an unscheduled throw it is the round-start position
  /// (the partial block is discarded because the mid-throw state is not
  /// trustworthy).
  std::uint64_t position = 0;
  std::uint32_t attempts = 0;
  std::string error;
};

/// A seeded per-stream fault: fire when `stream` reaches per-stream sample
/// `at_sample`, for `times` consecutive generation attempts. Only
/// kTransient and kPermanent kinds are meaningful at a generation site.
struct ScheduledStreamFault {
  std::size_t stream = 0;
  std::uint64_t at_sample = 0;
  run::FaultKind kind = run::FaultKind::kTransient;
  std::uint64_t times = 1;
};

/// A seeded pressure transition: when every full-speed stream has emitted
/// `at_epoch` governed samples, move the ladder to `level` (0 recovers).
struct PressureEvent {
  std::uint64_t at_epoch = 0;
  int level = 0;
};

struct GovernorConfig {
  ResourceBudget budget;
  /// Retry semantics for TransientError, exactly the engine contract:
  /// max_attempts total tries, sleep backoff * 2^(k-1) before retry k,
  /// optional wall-clock deadline per stream. The `quarantine` flag is
  /// ignored — isolating the stream instead of failing the round is the
  /// governor's entire purpose.
  engine::FailurePolicy policy;
  /// Seeded fault schedule (deterministic mode).
  std::vector<ScheduledStreamFault> stream_faults;
  /// Seeded pressure schedule, strictly increasing at_epoch, levels 0..3.
  std::vector<PressureEvent> pressure_schedule;
  /// Fraction of active streams shed (paused, highest index first) when the
  /// ladder reaches level 1.
  double shed_fraction = 0.25;
  /// Block cap at level 2; 0 means half the requested block (at least 1).
  std::size_t degraded_block = 0;
  /// Snapshot every stream before every generation so even *unscheduled*
  /// TransientErrors get full retry semantics. Costs one state serialization
  /// per stream per round (the "quarantine overhead" bench_service
  /// measures); off by default so the healthy fleet pays one branch.
  bool snapshot_every_round = false;
  /// Live pressure probe returning a desired ladder level (e.g. an RSS
  /// reading mapped to thresholds). Consulted once per advance_round, and
  /// mutually exclusive with pressure_schedule. Non-deterministic: the
  /// hash-invariance guarantee does not cover probe-driven transitions.
  std::function<int()> pressure_probe;
};

/// The governor proper. Owns no streams — it wraps a TrafficService and
/// implements the service's StreamGovernor generation hook.
class OverloadGovernor final : public StreamGovernor {
 public:
  /// Validates the config (fault kinds, schedule ordering, fractions) and
  /// indexes the fault schedule by stream. Throws vbr::InvalidArgument.
  OverloadGovernor(TrafficService& service, GovernorConfig config);

  /// Would the governor admit `additional_streams` more streams of the
  /// service's own shape right now? Level 3 refuses regardless of budget.
  AdmissionDecision admit(std::size_t additional_streams) const;

  /// Advance the fleet by `block` governed samples, splitting the round at
  /// scheduled pressure epochs so every transition lands at an exact
  /// per-stream position (this is what makes the hash invariant to how the
  /// caller slices rounds).
  void advance_round(std::size_t block);

  /// Current ladder level (0 = nominal .. 3 = refusing admissions).
  int level() const { return level_; }
  /// Governed samples each full-speed stream has emitted.
  std::uint64_t epoch() const { return epoch_; }
  /// Quarantine records, ordered by stream index.
  std::vector<StreamFailure> failures() const;
  std::size_t quarantined_streams() const;
  /// Transient faults absorbed by retry (the streams still serve).
  std::uint64_t transient_retries() const { return transient_retries_; }
  /// Streams currently shed (paused) by the ladder.
  std::size_t shed_streams() const { return shed_.size(); }
  /// Set on entering level 3; the serving loop should checkpoint, then
  /// acknowledge_checkpoint() to clear.
  bool checkpoint_requested() const { return checkpoint_requested_; }
  void acknowledge_checkpoint() { checkpoint_requested_ = false; }

  /// Serialize / restore the governor (ladder position, shed set, failure
  /// records, remaining fault schedule, retry counters) so a checkpoint
  /// taken mid-degradation resumes bit-identically. The payload carries a
  /// fingerprint of the governed schedule; restore_state throws
  /// vbr::IoError if the checkpoint belongs to a different GovernorConfig.
  void save_state(std::ostream& out) const;
  void restore_state(std::istream& in);

  /// StreamGovernor hook (called by TrafficService workers, concurrently
  /// for distinct streams). Not for direct use.
  bool generate(std::size_t stream, StreamingSource& source, std::size_t block,
                std::vector<double>& out) override;

 private:
  struct FaultEntry {
    std::uint64_t at_sample = 0;
    run::FaultKind kind = run::FaultKind::kTransient;
    std::uint64_t remaining = 0;
    /// Position in GovernorConfig::stream_faults (checkpoint ordering).
    std::size_t config_index = 0;
  };
  struct StreamFaultState {
    std::vector<FaultEntry> entries;  ///< sorted by at_sample
  };

  StreamFaultState* fault_state(std::size_t stream);
  bool faults_pending(const StreamFaultState* state, std::uint64_t position,
                      std::size_t block) const;
  /// Generate `block` samples, throwing at the exact scheduled positions;
  /// sets `threw_scheduled` just before firing so the catch site can tell
  /// a scheduled fault (deterministic partial block) from a stray one.
  void generate_with_plan(StreamingSource& source, std::size_t block, std::vector<double>& out,
                          StreamFaultState& state, bool& threw_scheduled);
  bool generate_guarded(std::size_t stream, StreamingSource& source, std::size_t block,
                        std::vector<double>& out, StreamFaultState* state);
  void record_failure(StreamFailure failure);
  void apply_level(int level);
  std::uint64_t config_fingerprint() const;

  TrafficService& service_;
  GovernorConfig config_;
  std::unordered_map<std::size_t, StreamFaultState> fault_states_;
  std::size_t next_event_ = 0;  ///< first unapplied pressure_schedule entry
  std::uint64_t epoch_ = 0;
  int level_ = 0;
  std::vector<std::size_t> shed_;  ///< streams paused by the ladder
  bool checkpoint_requested_ = false;
  std::atomic<std::uint64_t> transient_retries_{0};
  mutable std::mutex failures_mutex_;
  std::map<std::size_t, StreamFailure> failures_;  ///< keyed by stream index
};

}  // namespace vbr::service
