#include "vbr/service/streaming_paxson.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"

namespace vbr::service {
namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

StreamingPaxson::StreamingPaxson(const model::PaxsonOptions& options, std::size_t window,
                                 std::size_t overlap, Rng& parent)
    : options_(options),
      window_(window),
      overlap_(overlap),
      stride_(window - overlap),
      rng_(parent.split()) {
  VBR_ENSURE(options.hurst > 0.0 && options.hurst < 1.0, "H must be in (0, 1)");
  VBR_ENSURE(options.variance > 0.0, "variance must be positive");
  VBR_ENSURE(is_power_of_two(window_) && window_ >= 4,
             "paxson window must be a power of two >= 4");
  VBR_ENSURE(overlap_ >= 1 && 2 * overlap_ <= window_,
             "paxson overlap must lie in [1, window / 2]");
}

void StreamingPaxson::refill_segment() {
  // Window j covers global samples [j * stride, j * stride + window); its
  // first `overlap` samples are blended with the previous window's tail,
  // the rest pass through untouched. Segment 0 has no predecessor, so it is
  // the pure head of window 0.
  std::vector<double> next = model::paxson_fgn(window_, options_, rng_);
  segment_.resize(stride_);
  if (windows_drawn_ == 0) {
    std::copy(next.begin(), next.begin() + static_cast<std::ptrdiff_t>(stride_),
              segment_.begin());
  } else {
    for (std::size_t t = 0; t < overlap_; ++t) {
      const double u =
          (static_cast<double>(t) + 1.0) / (static_cast<double>(overlap_) + 1.0);
      const double a = std::cos(0.5 * std::numbers::pi * u);
      const double b = std::sin(0.5 * std::numbers::pi * u);
      segment_[t] = a * window_cur_[stride_ + t] + b * next[t];
    }
    for (std::size_t t = overlap_; t < stride_; ++t) segment_[t] = next[t];
  }
  window_cur_ = std::move(next);
  ++windows_drawn_;
  segment_pos_ = 0;
}

void StreamingPaxson::next_block(std::size_t n, std::vector<double>& out) {
  out.reserve(out.size() + n);
  while (n > 0) {
    if (windows_drawn_ == 0 || segment_pos_ == stride_) refill_segment();
    const std::size_t take = std::min(n, stride_ - segment_pos_);
    out.insert(out.end(), segment_.begin() + static_cast<std::ptrdiff_t>(segment_pos_),
               segment_.begin() + static_cast<std::ptrdiff_t>(segment_pos_ + take));
    segment_pos_ += take;
    position_ += take;
    n -= take;
  }
}

void StreamingPaxson::save(std::ostream& out) const {
  io::write_string(out, kind());
  io::write_f64(out, options_.hurst);
  io::write_f64(out, options_.variance);
  io::write_u64(out, window_);
  io::write_u64(out, overlap_);
  io::write_u64(out, position_);
  io::write_u64(out, windows_drawn_);
  io::write_u64(out, segment_pos_);
  rng_.save(out);
  io::write_f64_vector(out, window_cur_);
  io::write_f64_vector(out, segment_);
}

void StreamingPaxson::restore(std::istream& in) {
  io::read_tag(in, kind(), "StreamingPaxson::restore");
  const double hurst = io::read_f64(in, "StreamingPaxson::restore");
  const double variance = io::read_f64(in, "StreamingPaxson::restore");
  const std::uint64_t window = io::read_u64(in, "StreamingPaxson::restore");
  const std::uint64_t overlap = io::read_u64(in, "StreamingPaxson::restore");
  if (hurst != options_.hurst || variance != options_.variance || window != window_ ||
      overlap != overlap_) {
    throw IoError("StreamingPaxson::restore: configuration mismatch");
  }
  const std::uint64_t position = io::read_u64(in, "StreamingPaxson::restore");
  const std::uint64_t windows_drawn = io::read_u64(in, "StreamingPaxson::restore");
  const std::uint64_t segment_pos = io::read_u64(in, "StreamingPaxson::restore");
  Rng rng;
  rng.restore(in);
  std::vector<double> window_cur =
      io::read_f64_vector(in, window_, "StreamingPaxson::restore window");
  std::vector<double> segment =
      io::read_f64_vector(in, stride_, "StreamingPaxson::restore segment");
  // Cross-field consistency: a fresh stream has empty buffers; a started
  // one has a full window, a full segment, and a consumed prefix within it.
  if (windows_drawn == 0) {
    if (position != 0 || segment_pos != 0 || !window_cur.empty() || !segment.empty()) {
      throw IoError("StreamingPaxson::restore: fresh stream with non-empty state");
    }
  } else {
    if (window_cur.size() != window_ || segment.size() != stride_ || segment_pos > stride_) {
      throw IoError("StreamingPaxson::restore: buffer sizes disagree with progress");
    }
    if (position != (windows_drawn - 1) * stride_ + segment_pos) {
      throw IoError("StreamingPaxson::restore: position disagrees with window count");
    }
  }
  for (const double s : window_cur) {
    if (!std::isfinite(s)) throw IoError("StreamingPaxson::restore: non-finite sample");
  }
  for (const double s : segment) {
    if (!std::isfinite(s)) throw IoError("StreamingPaxson::restore: non-finite sample");
  }
  position_ = position;
  windows_drawn_ = windows_drawn;
  segment_pos_ = static_cast<std::size_t>(segment_pos);
  rng_ = rng;
  window_cur_ = std::move(window_cur);
  segment_ = std::move(segment);
}

}  // namespace vbr::service
