#include "vbr/service/streaming_hosking.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <tuple>
#include <utility>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/serialize.hpp"

namespace vbr::service {
namespace {

// Replicates the model::HoskingGenerator recursion step by step — same
// Kahan sums, same operation order, same ENSUREs — so a stream that reads
// this table draws bit-for-bit what the batch generator draws. Any change
// here must keep service_test's full-state equivalence green.
std::shared_ptr<const HoskingCoeffTable> build_coeff_table(const model::HoskingOptions& options,
                                                           std::size_t horizon) {
  const double d = options.hurst - 0.5;
  std::vector<double> rho{1.0};
  const auto extend_rho = [&](std::size_t upto) {
    while (rho.size() <= upto) {
      const auto k = static_cast<double>(rho.size());
      rho.push_back(rho.back() * (k - 1.0 + d) / (k - d));
    }
  };

  auto table = std::make_shared<HoskingCoeffTable>();
  table->phi.reserve(horizon);
  table->v.reserve(horizon + 1);
  table->v.push_back(options.variance);

  std::vector<double> phi_prev;
  double n_prev = 0.0;
  double d_prev = 1.0;
  double v = options.variance;
  for (std::size_t k = 1; k <= horizon; ++k) {
    extend_rho(k);

    KahanSum acc;
    for (std::size_t j = 1; j < k; ++j) acc.add(phi_prev[j - 1] * rho[k - j]);
    const double n_k = rho[k] - acc.value();

    const double d_k = d_prev - n_prev * n_prev / d_prev;
    VBR_ENSURE(d_k > 0.0, "Hosking recursion lost positive definiteness");

    const double phi_kk = n_k / d_k;
    VBR_ENSURE(std::abs(phi_kk) < 1.0, "partial autocorrelation left (-1, 1)");

    std::vector<double> phi_new(k);
    for (std::size_t j = 1; j < k; ++j) {
      phi_new[j - 1] = phi_prev[j - 1] - phi_kk * phi_prev[k - j - 1];
    }
    phi_new[k - 1] = phi_kk;

    v *= (1.0 - phi_kk * phi_kk);

    table->phi.push_back(phi_new);
    table->v.push_back(v);
    phi_prev = std::move(phi_new);
    n_prev = n_k;
    d_prev = d_k;
  }
  return table;
}

struct CoeffCache {
  std::mutex mutex;
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::size_t>,
           std::shared_ptr<const HoskingCoeffTable>>
      entries;
};

CoeffCache& coeff_cache() {
  static CoeffCache cache;
  return cache;
}

std::uint64_t double_bits(double x) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof x);
  std::memcpy(&bits, &x, sizeof bits);
  return bits;
}

std::shared_ptr<const HoskingCoeffTable> cached_coeff_table(const model::HoskingOptions& options,
                                                            std::size_t horizon) {
  const auto key = std::make_tuple(double_bits(options.hurst), double_bits(options.variance),
                                   horizon);
  auto& cache = coeff_cache();
  {
    const std::scoped_lock lock(cache.mutex);
    if (const auto it = cache.entries.find(key); it != cache.entries.end()) return it->second;
  }
  // Build outside the lock: an O(m^2) recursion must not serialize every
  // other stream's construction. A racing duplicate build is harmless —
  // both produce identical tables and the first insert wins.
  auto table = build_coeff_table(options, horizon);
  const std::scoped_lock lock(cache.mutex);
  return cache.entries.emplace(key, std::move(table)).first->second;
}

}  // namespace

StreamingHosking::StreamingHosking(const model::HoskingOptions& options, std::size_t horizon,
                                   Rng& parent)
    : options_(options), horizon_(horizon), rng_(parent.split()) {
  VBR_ENSURE(options.hurst > 0.0 && options.hurst < 1.0, "H must be in (0, 1)");
  VBR_ENSURE(options.variance > 0.0, "marginal variance must be positive");
  VBR_ENSURE(horizon >= 1, "hosking horizon must be at least 1");
  coeffs_ = cached_coeff_table(options_, horizon_);
  ring_.assign(horizon_, 0.0);
}

double StreamingHosking::innovation_variance() const {
  const std::size_t order =
      static_cast<std::size_t>(std::min<std::uint64_t>(position_, horizon_));
  return coeffs_->v[order];
}

double StreamingHosking::next_sample() {
  const std::uint64_t k = position_;
  double x = 0.0;
  if (k == 0) {
    x = rng_.normal(0.0, std::sqrt(coeffs_->v[0]));
  } else {
    const auto order = static_cast<std::size_t>(std::min<std::uint64_t>(k, horizon_));
    const std::vector<double>& phi = coeffs_->phi[order - 1];
    KahanSum m_acc;
    for (std::size_t j = 1; j <= order; ++j) {
      m_acc.add(phi[j - 1] * ring_[static_cast<std::size_t>((k - j) % horizon_)]);
    }
    x = rng_.normal(m_acc.value(), std::sqrt(coeffs_->v[order]));
  }
  VBR_DCHECK(std::isfinite(x), "non-finite streaming Hosking sample");
  ring_[static_cast<std::size_t>(k % horizon_)] = x;
  ++position_;
  return x;
}

void StreamingHosking::next_block(std::size_t n, std::vector<double>& out) {
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next_sample());
}

void StreamingHosking::save(std::ostream& out) const {
  io::write_string(out, kind());
  io::write_f64(out, options_.hurst);
  io::write_f64(out, options_.variance);
  io::write_u64(out, horizon_);
  io::write_u64(out, position_);
  rng_.save(out);
  // The last min(position, horizon) samples, oldest first — exactly the
  // ring contents a restored stream needs for its next predictions.
  const auto valid = static_cast<std::size_t>(std::min<std::uint64_t>(position_, horizon_));
  io::write_u64(out, valid);
  for (std::size_t i = 0; i < valid; ++i) {
    const std::uint64_t pos = position_ - valid + i;
    io::write_f64(out, ring_[static_cast<std::size_t>(pos % horizon_)]);
  }
}

void StreamingHosking::restore(std::istream& in) {
  io::read_tag(in, kind(), "StreamingHosking::restore");
  const double hurst = io::read_f64(in, "StreamingHosking::restore");
  const double variance = io::read_f64(in, "StreamingHosking::restore");
  const std::uint64_t horizon = io::read_u64(in, "StreamingHosking::restore");
  if (hurst != options_.hurst || variance != options_.variance || horizon != horizon_) {
    throw IoError("StreamingHosking::restore: configuration mismatch");
  }
  const std::uint64_t position = io::read_u64(in, "StreamingHosking::restore");
  Rng rng;
  rng.restore(in);
  const std::size_t valid = io::read_count(in, horizon_, "StreamingHosking::restore ring");
  if (valid != static_cast<std::size_t>(std::min<std::uint64_t>(position, horizon_))) {
    throw IoError("StreamingHosking::restore: ring length disagrees with position");
  }
  std::vector<double> samples(valid);
  for (auto& s : samples) {
    s = io::read_f64(in, "StreamingHosking::restore ring");
    if (!std::isfinite(s)) throw IoError("StreamingHosking::restore: non-finite ring sample");
  }
  // All fields validated; commit.
  position_ = position;
  rng_ = rng;
  ring_.assign(horizon_, 0.0);
  for (std::size_t i = 0; i < valid; ++i) {
    const std::uint64_t pos = position_ - valid + i;
    ring_[static_cast<std::size_t>(pos % horizon_)] = samples[i];
  }
}

std::size_t StreamingHosking::coeff_cache_size() {
  auto& cache = coeff_cache();
  const std::scoped_lock lock(cache.mutex);
  return cache.entries.size();
}

void StreamingHosking::coeff_cache_clear() {
  auto& cache = coeff_cache();
  const std::scoped_lock lock(cache.mutex);
  cache.entries.clear();
}

}  // namespace vbr::service
