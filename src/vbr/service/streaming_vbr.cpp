#include "vbr/service/streaming_vbr.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>

#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"
#include "vbr/model/fgn_generator.hpp"
#include "vbr/service/streaming_hosking.hpp"
#include "vbr/service/streaming_onoff.hpp"
#include "vbr/service/streaming_paxson.hpp"

namespace vbr::service {

/// Owns the marginal distribution alongside the map that references it;
/// heap-allocated once per distinct parameter triple and shared immutably.
struct MarginalMapEntry {
  stats::GammaParetoDistribution dist;
  model::TabulatedMarginalMap map;

  explicit MarginalMapEntry(const stats::GammaParetoParams& params)
      : dist(params), map(dist) {}
};

namespace {

std::uint64_t double_bits(double x) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof x);
  std::memcpy(&bits, &x, sizeof bits);
  return bits;
}

struct MarginalMapCache {
  std::mutex mutex;
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
           std::shared_ptr<const MarginalMapEntry>>
      entries;
};

MarginalMapCache& marginal_map_cache() {
  static MarginalMapCache cache;
  return cache;
}

std::shared_ptr<const MarginalMapEntry> cached_marginal_map(
    const stats::GammaParetoParams& params) {
  const auto key = std::make_tuple(double_bits(params.mu_gamma), double_bits(params.sigma_gamma),
                                   double_bits(params.tail_slope));
  auto& cache = marginal_map_cache();
  {
    const std::scoped_lock lock(cache.mutex);
    if (const auto it = cache.entries.find(key); it != cache.entries.end()) return it->second;
  }
  // Tabulating 10k quantiles is slow; build outside the lock (a racing
  // duplicate is identical and the first insert wins).
  auto entry = std::make_shared<const MarginalMapEntry>(params);
  const std::scoped_lock lock(cache.mutex);
  return cache.entries.emplace(key, std::move(entry)).first->second;
}

}  // namespace

StreamingVbrSource::StreamingVbrSource(const model::VbrModelParams& params,
                                       model::ModelVariant variant,
                                       model::GeneratorBackend backend,
                                       const StreamingTuning& tuning, Rng& parent)
    : params_(params), variant_(variant), backend_(backend), rng_(parent) {
  VBR_ENSURE(params.hurst > 0.0 && params.hurst < 1.0, "H must be in (0, 1)");
  if (variant_ == model::ModelVariant::kIidGammaPareto) {
    marginal_ = std::make_unique<stats::GammaParetoDistribution>(params.marginal);
    return;
  }
  core_ = make_streaming_core(backend, params.hurst, 1.0, tuning, parent);
  if (variant_ == model::ModelVariant::kFull) map_ = cached_marginal_map(params.marginal);
}

std::uint64_t StreamingVbrSource::position() const {
  return core_ ? core_->position() : iid_position_;
}

void StreamingVbrSource::next_block(std::size_t n, std::vector<double>& out) {
  if (variant_ == model::ModelVariant::kIidGammaPareto) {
    out.reserve(out.size() + n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(marginal_->sample(rng_));
    iid_position_ += n;
    return;
  }
  // Let the core append, then transform its tail in place — no scratch
  // buffer, so the wrapper adds nothing to the per-stream footprint.
  const std::size_t base = out.size();
  core_->next_block(n, out);
  if (variant_ == model::ModelVariant::kGaussianFarima) {
    for (std::size_t i = base; i < out.size(); ++i) {
      VBR_DCHECK(std::isfinite(out[i]), "non-finite Gaussian core sample");
      out[i] = std::max(0.0, params_.marginal.mu_gamma +
                                 params_.marginal.sigma_gamma * out[i]);
    }
    return;
  }
  const model::TabulatedMarginalMap& map = map_->map;
  for (std::size_t i = base; i < out.size(); ++i) out[i] = map(out[i]);
}

void StreamingVbrSource::save(std::ostream& out) const {
  io::write_string(out, kind());
  io::write_u8(out, static_cast<std::uint8_t>(variant_));
  io::write_string(out, model::generator_backend_name(backend_));
  io::write_f64(out, params_.marginal.mu_gamma);
  io::write_f64(out, params_.marginal.sigma_gamma);
  io::write_f64(out, params_.marginal.tail_slope);
  io::write_f64(out, params_.hurst);
  if (variant_ == model::ModelVariant::kIidGammaPareto) {
    io::write_u64(out, iid_position_);
    rng_.save(out);
    return;
  }
  core_->save(out);
}

void StreamingVbrSource::restore(std::istream& in) {
  io::read_tag(in, kind(), "StreamingVbrSource::restore");
  const std::uint8_t variant = io::read_u8(in, "StreamingVbrSource::restore");
  const std::string backend = io::read_string(in, 64, "StreamingVbrSource::restore");
  const double mu = io::read_f64(in, "StreamingVbrSource::restore");
  const double sigma = io::read_f64(in, "StreamingVbrSource::restore");
  const double tail = io::read_f64(in, "StreamingVbrSource::restore");
  const double hurst = io::read_f64(in, "StreamingVbrSource::restore");
  if (variant != static_cast<std::uint8_t>(variant_) ||
      backend != model::generator_backend_name(backend_) ||
      mu != params_.marginal.mu_gamma || sigma != params_.marginal.sigma_gamma ||
      tail != params_.marginal.tail_slope || hurst != params_.hurst) {
    throw IoError("StreamingVbrSource::restore: configuration mismatch");
  }
  if (variant_ == model::ModelVariant::kIidGammaPareto) {
    const std::uint64_t position = io::read_u64(in, "StreamingVbrSource::restore");
    Rng rng;
    rng.restore(in);
    iid_position_ = position;
    rng_ = rng;
    return;
  }
  core_->restore(in);
}

std::size_t StreamingVbrSource::marginal_map_cache_size() {
  auto& cache = marginal_map_cache();
  const std::scoped_lock lock(cache.mutex);
  return cache.entries.size();
}

void StreamingVbrSource::marginal_map_cache_clear() {
  auto& cache = marginal_map_cache();
  const std::scoped_lock lock(cache.mutex);
  cache.entries.clear();
}

std::unique_ptr<StreamingSource> make_streaming_core(model::GeneratorBackend backend,
                                                     double hurst, double variance,
                                                     const StreamingTuning& tuning,
                                                     Rng& parent) {
  switch (backend) {
    case model::GeneratorBackend::kHosking:
      return std::make_unique<StreamingHosking>(
          model::HoskingOptions{.hurst = hurst, .variance = variance},
          tuning.hosking_horizon, parent);
    case model::GeneratorBackend::kPaxson:
      return std::make_unique<StreamingPaxson>(
          model::PaxsonOptions{.hurst = hurst, .variance = variance},
          tuning.paxson_window, tuning.paxson_overlap, parent);
    case model::GeneratorBackend::kAggregatedOnOff:
      return std::make_unique<StreamingOnOff>(
          model::OnOffOptions{.hurst = hurst,
                              .mean_active_sessions = tuning.onoff_mean_active_sessions,
                              .min_session_frames = tuning.onoff_min_session_frames,
                              .variance = variance},
          parent);
    case model::GeneratorBackend::kDaviesHarte:
      throw InvalidArgument(
          "davies-harte has no streaming form (whole-trace circulant embedding); "
          "use hosking, paxson, or onoff");
  }
  throw InvalidArgument("unknown generator backend");
}

std::unique_ptr<StreamingSource> make_streaming_source(const model::VbrModelParams& params,
                                                       model::ModelVariant variant,
                                                       model::GeneratorBackend backend,
                                                       const StreamingTuning& tuning,
                                                       Rng& parent) {
  return std::make_unique<StreamingVbrSource>(params, variant, backend, tuning, parent);
}

}  // namespace vbr::service
