#include "vbr/common/fft.hpp"

#include <cmath>
#include <numbers>

#include "vbr/common/error.hpp"

namespace vbr {
namespace {

using Complex = std::complex<double>;

// Iterative radix-2 Cooley-Tukey, n must be a power of two.
// `sign` is -1 for the forward transform, +1 for the (unnormalized) inverse.
void fft_radix2(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = static_cast<double>(sign) * 2.0 * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein's chirp-z transform for arbitrary n.
void fft_bluestein(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  const std::size_t m = next_power_of_two(2 * n + 1);

  // Chirp: w[j] = exp(sign * i * pi * j^2 / n). Reduce j^2 mod 2n to keep the
  // angle argument small and accurate for large n.
  std::vector<Complex> chirp(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t j2 = (static_cast<std::uint64_t>(j) * j) %
                             (2 * static_cast<std::uint64_t>(n));
    const double angle = static_cast<double>(sign) * std::numbers::pi *
                         static_cast<double>(j2) / static_cast<double>(n);
    chirp[j] = Complex(std::cos(angle), std::sin(angle));
  }

  std::vector<Complex> x(m, Complex(0.0, 0.0));
  std::vector<Complex> y(m, Complex(0.0, 0.0));
  for (std::size_t j = 0; j < n; ++j) x[j] = a[j] * chirp[j];
  y[0] = std::conj(chirp[0]);
  for (std::size_t j = 1; j < n; ++j) {
    y[j] = std::conj(chirp[j]);
    y[m - j] = std::conj(chirp[j]);
  }

  fft_radix2(x, -1);
  fft_radix2(y, -1);
  for (std::size_t j = 0; j < m; ++j) x[j] *= y[j];
  fft_radix2(x, +1);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t j = 0; j < n; ++j) a[j] = x[j] * scale * chirp[j];
}

void transform(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  VBR_ENSURE(n >= 1, "fft requires a non-empty sequence");
  if (n == 1) return;
  if (is_power_of_two(n)) {
    fft_radix2(a, sign);
  } else {
    fft_bluestein(a, sign);
  }
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<Complex>& data) { transform(data, -1); }

void ifft(std::vector<Complex>& data) {
  transform(data, +1);
  const double scale = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v *= scale;
}

std::vector<Complex> fft_real(const std::vector<double>& data) {
  std::vector<Complex> out(data.begin(), data.end());
  fft(out);
  return out;
}

std::vector<Complex> rfft(const std::vector<double>& data) {
  const std::size_t n = data.size();
  VBR_ENSURE(n >= 1, "rfft requires a non-empty sequence");
  if (n == 1) return {Complex(data[0], 0.0)};
  const std::size_t half = n / 2 + 1;
  if (n % 2 != 0) {
    // Odd lengths cannot be packed pairwise; do the full complex transform
    // and keep the non-redundant prefix.
    std::vector<Complex> full(data.begin(), data.end());
    fft(full);
    full.resize(half);
    return full;
  }

  // Pack adjacent samples into one complex sequence of half the length:
  // z[j] = x[2j] + i x[2j+1]. With E/O the length-L DFTs of the even/odd
  // subsequences, Z[k] = E[k] + i O[k] and (x real) conj(Z[L-k]) =
  // E[k] - i O[k], so one length-L FFT recovers both, and
  // X[k] = E[k] + e^{-2 pi i k / n} O[k].
  const std::size_t L = n / 2;
  std::vector<Complex> z(L);
  for (std::size_t j = 0; j < L; ++j) z[j] = Complex(data[2 * j], data[2 * j + 1]);
  fft(z);

  std::vector<Complex> out(half);
  for (std::size_t k = 0; k <= L; ++k) {
    const Complex zk = z[k % L];  // Z is L-periodic: Z[L] = Z[0]
    const Complex zc = std::conj(z[(L - k) % L]);
    const Complex even = 0.5 * (zk + zc);
    const Complex odd = Complex(0.0, -0.5) * (zk - zc);  // (Z[k] - conj(Z[L-k])) / 2i
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(n);
    out[k] = even + Complex(std::cos(angle), std::sin(angle)) * odd;
  }
  return out;
}

std::vector<double> irfft(const std::vector<Complex>& spectrum, std::size_t n) {
  VBR_ENSURE(n >= 1, "irfft requires n >= 1");
  VBR_ENSURE(spectrum.size() == n / 2 + 1,
             "irfft spectrum must hold exactly floor(n/2) + 1 coefficients");
  if (n == 1) return {spectrum[0].real()};
  if (n % 2 != 0) {
    // Rebuild the conjugate-symmetric full spectrum and invert directly.
    std::vector<Complex> full(n);
    for (std::size_t k = 0; k < spectrum.size(); ++k) full[k] = spectrum[k];
    for (std::size_t k = 1; k < spectrum.size(); ++k) full[n - k] = std::conj(spectrum[k]);
    ifft(full);
    std::vector<double> out(n);
    for (std::size_t j = 0; j < n; ++j) out[j] = full[j].real();
    return out;
  }

  // Invert the half-length packing of rfft(): from X[k] = E[k] + W^k O[k]
  // and conj(X[L-k]) = E[k] - W^k O[k] (W = e^{-2 pi i / n}), recover
  // Z[k] = E[k] + i O[k]; one length-L inverse FFT then yields the
  // interleaved samples z[j] = x[2j] + i x[2j+1]. The 1/L normalization of
  // ifft() is exactly the 1/n of the full inverse applied subsequence-wise.
  const std::size_t L = n / 2;
  std::vector<Complex> z(L);
  for (std::size_t k = 0; k < L; ++k) {
    const Complex xk = spectrum[k];
    const Complex xc = std::conj(spectrum[L - k]);
    const Complex even = 0.5 * (xk + xc);
    const Complex odd_twiddled = 0.5 * (xk - xc);  // = W^k O[k]
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(n);
    const Complex odd = Complex(std::cos(angle), std::sin(angle)) * odd_twiddled;
    z[k] = even + Complex(0.0, 1.0) * odd;
  }
  ifft(z);
  std::vector<double> out(n);
  for (std::size_t j = 0; j < L; ++j) {
    out[2 * j] = z[j].real();
    out[2 * j + 1] = z[j].imag();
  }
  return out;
}

}  // namespace vbr
