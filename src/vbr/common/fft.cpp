#include "vbr/common/fft.hpp"

#include <cmath>
#include <numbers>

#include "vbr/common/error.hpp"

namespace vbr {
namespace {

using Complex = std::complex<double>;

// Iterative radix-2 Cooley-Tukey, n must be a power of two.
// `sign` is -1 for the forward transform, +1 for the (unnormalized) inverse.
void fft_radix2(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = static_cast<double>(sign) * 2.0 * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein's chirp-z transform for arbitrary n.
void fft_bluestein(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  const std::size_t m = next_power_of_two(2 * n + 1);

  // Chirp: w[j] = exp(sign * i * pi * j^2 / n). Reduce j^2 mod 2n to keep the
  // angle argument small and accurate for large n.
  std::vector<Complex> chirp(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t j2 = (static_cast<std::uint64_t>(j) * j) %
                             (2 * static_cast<std::uint64_t>(n));
    const double angle = static_cast<double>(sign) * std::numbers::pi *
                         static_cast<double>(j2) / static_cast<double>(n);
    chirp[j] = Complex(std::cos(angle), std::sin(angle));
  }

  std::vector<Complex> x(m, Complex(0.0, 0.0));
  std::vector<Complex> y(m, Complex(0.0, 0.0));
  for (std::size_t j = 0; j < n; ++j) x[j] = a[j] * chirp[j];
  y[0] = std::conj(chirp[0]);
  for (std::size_t j = 1; j < n; ++j) {
    y[j] = std::conj(chirp[j]);
    y[m - j] = std::conj(chirp[j]);
  }

  fft_radix2(x, -1);
  fft_radix2(y, -1);
  for (std::size_t j = 0; j < m; ++j) x[j] *= y[j];
  fft_radix2(x, +1);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t j = 0; j < n; ++j) a[j] = x[j] * scale * chirp[j];
}

void transform(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  VBR_ENSURE(n >= 1, "fft requires a non-empty sequence");
  if (n == 1) return;
  if (is_power_of_two(n)) {
    fft_radix2(a, sign);
  } else {
    fft_bluestein(a, sign);
  }
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<Complex>& data) { transform(data, -1); }

void ifft(std::vector<Complex>& data) {
  transform(data, +1);
  const double scale = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v *= scale;
}

std::vector<Complex> fft_real(const std::vector<double>& data) {
  std::vector<Complex> out(data.begin(), data.end());
  fft(out);
  return out;
}

}  // namespace vbr
