#include "vbr/common/special_functions.hpp"

#include <cmath>
#include <limits>

#include "vbr/common/error.hpp"

namespace vbr {
namespace {

// std::lgamma writes the process-global `signgam`, so concurrent callers
// race on it (ThreadSanitizer flags the parallel generation engine through
// the Gamma quantile path). Every caller here has x > 0, where the sign is
// always +1, so the reentrant lgamma_r is a drop-in replacement.
double lgamma_safe(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double log_gamma(double x) {
  VBR_ENSURE(x > 0.0, "log_gamma requires x > 0");
  return lgamma_safe(x);
}

double log_beta(double a, double b) {
  VBR_ENSURE(a > 0.0 && b > 0.0, "log_beta requires positive arguments");
  return lgamma_safe(a) + lgamma_safe(b) - lgamma_safe(a + b);
}

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = std::numeric_limits<double>::epsilon();
constexpr double kTiny = std::numeric_limits<double>::min() / kEpsilon;

// Lower incomplete gamma by power series: P(s,x) converges fast for x < s+1.
double gamma_p_series(double s, double x) {
  double term = 1.0 / s;
  double sum = term;
  double a = s;
  for (int i = 0; i < kMaxIterations; ++i) {
    a += 1.0;
    term *= x / a;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) {
      return sum * std::exp(-x + s * std::log(x) - lgamma_safe(s));
    }
  }
  throw NumericalError("gamma_p series failed to converge");
}

// Upper incomplete gamma by Lentz continued fraction: Q(s,x) for x >= s+1.
double gamma_q_cf(double s, double x) {
  double b = x + 1.0 - s;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - s);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) {
      return h * std::exp(-x + s * std::log(x) - lgamma_safe(s));
    }
  }
  throw NumericalError("gamma_q continued fraction failed to converge");
}

}  // namespace

double gamma_p(double s, double x) {
  VBR_ENSURE(s > 0.0, "gamma_p requires s > 0");
  VBR_ENSURE(x >= 0.0, "gamma_p requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < s + 1.0) return gamma_p_series(s, x);
  return 1.0 - gamma_q_cf(s, x);
}

double gamma_q(double s, double x) {
  VBR_ENSURE(s > 0.0, "gamma_q requires s > 0");
  VBR_ENSURE(x >= 0.0, "gamma_q requires x >= 0");
  if (x == 0.0) return 1.0;
  if (x < s + 1.0) return 1.0 - gamma_p_series(s, x);
  return gamma_q_cf(s, x);
}

double gamma_p_inverse(double s, double p) {
  VBR_ENSURE(s > 0.0, "gamma_p_inverse requires s > 0");
  VBR_ENSURE(p >= 0.0 && p < 1.0, "gamma_p_inverse requires p in [0, 1)");
  if (p == 0.0) return 0.0;

  // Initial guess (Numerical Recipes / AS 26.4.17): Wilson-Hilferty for s > 1,
  // small-s expansion otherwise.
  const double gln = lgamma_safe(s);
  double x = 0.0;
  if (s > 1.0) {
    const double z = normal_quantile(p);
    const double t = 1.0 - 1.0 / (9.0 * s) + z / (3.0 * std::sqrt(s));
    x = s * t * t * t;
    if (x <= 0.0) x = 1e-8;
  } else {
    const double t = 1.0 - s * (0.253 + s * 0.12);
    if (p < t) {
      x = std::pow(p / t, 1.0 / s);
    } else {
      x = 1.0 - std::log(1.0 - (p - t) / (1.0 - t));
    }
  }

  // Halley iteration on f(x) = P(s, x) - p; converge on the residual in
  // probability space so tiny quantiles (where x is small but P is steep in
  // relative terms) are still resolved to full relative precision.
  for (int i = 0; i < 200; ++i) {
    if (x <= 0.0) x = 0.5 * (x + 1e-300);  // keep in domain
    const double err = gamma_p(s, x) - p;
    if (std::abs(err) <= 1e-13 * p) break;
    const double logpdf = -x + (s - 1.0) * std::log(x) - gln;
    const double pdf = std::exp(logpdf);
    if (pdf <= 0.0) {
      // Flat region: fall back to bisection-style nudge.
      x *= (err > 0.0) ? 0.5 : 2.0;
      continue;
    }
    double step = err / pdf;
    // Halley correction.
    step /= std::max(0.5, 1.0 - 0.5 * step * ((s - 1.0) / x - 1.0));
    const double x_new = x - step;
    x = (x_new <= 0.0) ? 0.5 * x : x_new;
    if (std::abs(step) < 1e-15 * std::max(1.0, x)) break;
  }
  return x;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
  VBR_ENSURE(p > 0.0 && p < 1.0, "normal_quantile requires p in (0, 1)");
  // Wichura's algorithm AS 241 (PPND16).
  const double q = p - 0.5;
  if (std::abs(q) <= 0.425) {
    const double r = 0.180625 - q * q;
    return q *
           (((((((2.5090809287301226727e+3 * r + 3.3430575583588128105e+4) * r +
                 6.7265770927008700853e+4) * r + 4.5921953931549871457e+4) * r +
               1.3731693765509461125e+4) * r + 1.9715909503065514427e+3) * r +
             1.3314166789178437745e+2) * r + 3.3871328727963666080e+0) /
           (((((((5.2264952788528545610e+3 * r + 2.8729085735721942674e+4) * r +
                 3.9307895800092710610e+4) * r + 2.1213794301586595867e+4) * r +
               5.3941960214247511077e+3) * r + 6.8718700749205790830e+2) * r +
             4.2313330701600911252e+1) * r + 1.0);
  }
  double r = (q < 0.0) ? p : 1.0 - p;
  r = std::sqrt(-std::log(r));
  double value = 0.0;
  if (r <= 5.0) {
    r -= 1.6;
    value = (((((((7.74545014278341407640e-4 * r + 2.27238449892691845833e-2) * r +
                  2.41780725177450611770e-1) * r + 1.27045825245236838258e+0) * r +
                3.64784832476320460504e+0) * r + 5.76949722146069140550e+0) * r +
              4.63033784615654529590e+0) * r + 1.42343711074968357734e+0) /
            (((((((1.05075007164441684324e-9 * r + 5.47593808499534494600e-4) * r +
                  1.51986665636164571966e-2) * r + 1.48103976427480074590e-1) * r +
                6.89767334985100004550e-1) * r + 1.67638483018380384940e+0) * r +
              2.05319162663775882187e+0) * r + 1.0);
  } else {
    r -= 5.0;
    value = (((((((2.01033439929228813265e-7 * r + 2.71155556874348757815e-5) * r +
                  1.24266094738807843860e-3) * r + 2.65321895265761230930e-2) * r +
                2.96560571828504891230e-1) * r + 1.78482653991729133580e+0) * r +
              5.46378491116411436990e+0) * r + 6.65790464350110377720e+0) /
            (((((((2.04426310338993978564e-15 * r + 1.42151175831644588870e-7) * r +
                  1.84631831751005468180e-5) * r + 7.86869131145613259100e-4) * r +
                1.48753612908506148525e-2) * r + 1.36929880922735805310e-1) * r +
              5.99832206555887937690e-1) * r + 1.0);
  }
  return (q < 0.0) ? -value : value;
}

}  // namespace vbr
