// Special functions needed by the statistical library: incomplete gamma,
// Normal CDF and quantile, and their inverses. These power the Gamma and
// Gamma/Pareto distribution code (pdf/cdf/quantile), the marginal transform
// Y = F^{-1}(Phi(X)) of the source model, and the Whittle estimator.
#pragma once

namespace vbr {

/// Natural log of the Gamma function (thin wrapper; kept for a stable API).
double log_gamma(double x);

/// Regularized lower incomplete gamma P(s, x) = gamma(s, x) / Gamma(s),
/// for s > 0, x >= 0. Series expansion for x < s + 1, continued fraction
/// otherwise; absolute accuracy ~1e-14.
double gamma_p(double s, double x);

/// Regularized upper incomplete gamma Q(s, x) = 1 - P(s, x).
double gamma_q(double s, double x);

/// Inverse of gamma_p in x: returns x such that P(s, x) = p, for p in [0, 1).
/// Halley-refined initial guess (Abramowitz & Stegun 26.4.17 style).
double gamma_p_inverse(double s, double p);

/// Standard Normal cumulative distribution function Phi(x).
double normal_cdf(double x);

/// Inverse standard Normal CDF (quantile), p in (0, 1).
/// Wichura's AS241 algorithm; relative accuracy ~1e-15.
double normal_quantile(double p);

/// Natural log of the Beta function B(a, b).
double log_beta(double a, double b);

}  // namespace vbr
