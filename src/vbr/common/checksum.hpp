// Checksums shared by the checkpoint format and the determinism witnesses.
//
// crc32() is the standard CRC-32/ISO-HDLC (zlib's polynomial, reflected,
// init/xorout 0xFFFFFFFF); it guards the campaign checkpoint payload against
// torn writes and bit rot. Fnv1a is the incremental 64-bit FNV-1a hash the
// engine benchmarks already use as a trace-determinism witness, factored out
// so the campaign runner, the scaling bench and the soak harness all compute
// the same hash over the same double bit patterns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace vbr {

/// CRC-32 (zlib-compatible) over a byte buffer. `seed` allows chaining:
/// crc32(b, crc32(a)) == crc32(a ++ b).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

/// Incremental 64-bit FNV-1a hasher. Feeding the same bytes in any chunking
/// yields the same digest, so a streaming campaign and a batch run agree.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 1469598103934665603ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  Fnv1a() = default;
  /// Resume from a previously reported digest (checkpoint restore).
  explicit Fnv1a(std::uint64_t state) : state_(state) {}

  void update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint64_t h = state_;
    for (std::size_t i = 0; i < size; ++i) {
      h ^= bytes[i];
      h *= kPrime;
    }
    state_ = h;
  }

  /// Hash the raw bit patterns of a double span (the trace witness).
  void update(std::span<const double> samples) {
    for (const double v : samples) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof bits);
      update(&bits, sizeof bits);
    }
  }

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

}  // namespace vbr
