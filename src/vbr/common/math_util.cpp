#include "vbr/common/math_util.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr {

void KahanSum::add(double value) {
  const double y = value - compensation_;
  const double t = sum_ + y;
  compensation_ = (t - sum_) - y;
  sum_ = t;
}

double kahan_total(std::span<const double> values) {
  KahanSum sum;
  for (double v : values) sum.add(v);
  return sum.value();
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  VBR_ENSURE(x.size() == y.size(), "linear_fit requires equal-length inputs");
  VBR_ENSURE(x.size() >= 2, "linear_fit requires at least two points");
  const auto n = static_cast<double>(x.size());

  KahanSum sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  const double mx = sx.value() / n;
  const double my = sy.value() / n;

  KahanSum sxx, sxy, syy;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx.add(dx * dx);
    sxy.add(dx * dy);
    syy.add(dy * dy);
  }
  VBR_ENSURE(sxx.value() > 0.0, "linear_fit requires non-degenerate x values");

  LinearFit fit;
  fit.n = x.size();
  fit.slope = sxy.value() / sxx.value();
  fit.intercept = my - fit.slope * mx;
  const double ss_tot = syy.value();
  const double ss_res = ss_tot - fit.slope * sxy.value();
  fit.r_squared = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  if (x.size() > 2) {
    const double var_res = std::max(0.0, ss_res) / (n - 2.0);
    fit.slope_stderr = std::sqrt(var_res / sxx.value());
  }
  return fit;
}

std::vector<double> log_spaced(double lo, double hi, std::size_t count) {
  VBR_ENSURE(lo > 0.0 && hi >= lo, "log_spaced requires 0 < lo <= hi");
  VBR_ENSURE(count >= 2, "log_spaced requires count >= 2");
  std::vector<double> out(count);
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(count - 1);
    out[i] = std::exp(llo + t * (lhi - llo));
  }
  return out;
}

std::vector<std::size_t> log_spaced_sizes(std::size_t lo, std::size_t hi, std::size_t count) {
  VBR_ENSURE(lo >= 1 && hi >= lo, "log_spaced_sizes requires 1 <= lo <= hi");
  const auto grid = log_spaced(static_cast<double>(lo), static_cast<double>(hi),
                               std::max<std::size_t>(count, 2));
  std::vector<std::size_t> out;
  out.reserve(grid.size());
  for (double g : grid) {
    const auto v = static_cast<std::size_t>(std::llround(g));
    if (out.empty() || v > out.back()) out.push_back(v);
  }
  return out;
}

std::vector<double> block_means(std::span<const double> values, std::size_t m) {
  VBR_ENSURE(m >= 1, "block size must be >= 1");
  const std::size_t blocks = values.size() / m;
  std::vector<double> out;
  out.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    KahanSum sum;
    for (std::size_t i = 0; i < m; ++i) sum.add(values[b * m + i]);
    out.push_back(sum.value() / static_cast<double>(m));
  }
  return out;
}

std::vector<double> block_sums(std::span<const double> values, std::size_t m) {
  auto means = block_means(values, m);
  for (auto& v : means) v *= static_cast<double>(m);
  return means;
}

double sample_mean(std::span<const double> values) {
  VBR_ENSURE(!values.empty(), "mean requires a non-empty range");
  return kahan_total(values) / static_cast<double>(values.size());
}

double sample_variance(std::span<const double> values) {
  VBR_ENSURE(values.size() >= 2, "variance requires at least two values");
  const double mean = sample_mean(values);
  KahanSum ss;
  for (double v : values) {
    const double d = v - mean;
    ss.add(d * d);
  }
  return ss.value() / static_cast<double>(values.size() - 1);
}

double percentile(std::span<const double> values, double q) {
  VBR_ENSURE(!values.empty(), "percentile requires a non-empty range");
  VBR_ENSURE(q >= 0.0 && q <= 1.0, "percentile requires q in [0, 1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace vbr
