#include "vbr/common/rng.hpp"

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"

namespace vbr {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed so that no state word is zero for any input.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split() { return Rng((*this)()); }

std::array<std::uint64_t, 4> Rng::state() const {
  VBR_ENSURE(!has_cached_normal_,
             "Rng::state() with a cached normal pending would lose half a draw");
  return state_;
}

Rng Rng::from_state(const std::array<std::uint64_t, 4>& state) {
  Rng rng;
  rng.state_ = state;
  rng.cached_normal_ = 0.0;
  rng.has_cached_normal_ = false;
  return rng;
}

void Rng::save(std::ostream& out) const {
  for (const std::uint64_t word : state_) io::write_u64(out, word);
  io::write_u8(out, has_cached_normal_ ? 1 : 0);
  io::write_f64(out, has_cached_normal_ ? cached_normal_ : 0.0);
}

void Rng::restore(std::istream& in) {
  std::array<std::uint64_t, 4> words{};
  for (auto& word : words) word = io::read_u64(in, "Rng::restore");
  const std::uint8_t flag = io::read_u8(in, "Rng::restore");
  if (flag > 1) throw IoError("Rng::restore: corrupt cached-normal flag");
  const double cached = io::read_f64(in, "Rng::restore");
  if (flag == 1 && !std::isfinite(cached)) {
    throw IoError("Rng::restore: non-finite cached normal");
  }
  state_ = words;
  has_cached_normal_ = (flag == 1);
  cached_normal_ = (flag == 1) ? cached : 0.0;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  VBR_ENSURE(lo < hi, "uniform range must be non-empty");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  VBR_ENSURE(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return draw % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method: draws a pair, caches the second.
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double lambda) {
  VBR_ENSURE(lambda > 0.0, "exponential rate must be positive");
  double u = uniform();
  while (u == 0.0) u = uniform();
  return -std::log(u) / lambda;
}

double Rng::pareto(double k, double a) {
  VBR_ENSURE(k > 0.0 && a > 0.0, "pareto parameters must be positive");
  double u = uniform();
  while (u == 0.0) u = uniform();
  return k / std::pow(u, 1.0 / a);
}

double Rng::gamma(double shape, double scale) {
  VBR_ENSURE(shape > 0.0 && scale > 0.0, "gamma parameters must be positive");
  if (shape < 1.0) {
    // Johnk-style boost: Gamma(s) = Gamma(s + 1) * U^{1/s}.
    double u = uniform();
    while (u == 0.0) u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return scale * d * v;
  }
}

}  // namespace vbr
