// Small numeric utilities shared across the library: compensated summation,
// least-squares regression (used by every Hurst estimator), log-spaced grids
// for variance-time / R/S lag selection, and percentile helpers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vbr {

/// Kahan-compensated running sum.
class KahanSum {
 public:
  void add(double value);
  double value() const { return sum_; }

  /// The compensation term, exposed (with from_parts) so a checkpoint can
  /// persist a running sum mid-stream and resume it bit-for-bit; rounding
  /// of later add()s depends on both words, not just value().
  double compensation() const { return compensation_; }

  /// Reconstruct the exact accumulator state captured by (value(),
  /// compensation()).
  static KahanSum from_parts(double sum, double compensation) {
    KahanSum k;
    k.sum_ = sum;
    k.compensation_ = compensation;
    return k;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Sum of a range with compensated summation.
double kahan_total(std::span<const double> values);

/// Result of a simple least-squares line fit y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;      ///< coefficient of determination
  double slope_stderr = 0.0;   ///< standard error of the slope estimate
  std::size_t n = 0;           ///< number of points used
};

/// Ordinary least squares on (x, y) pairs; requires x.size() == y.size() >= 2.
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Approximately `count` distinct integers log-spaced in [lo, hi], ascending.
/// Duplicates after rounding are removed, so the result can be shorter.
std::vector<std::size_t> log_spaced_sizes(std::size_t lo, std::size_t hi, std::size_t count);

/// `count` doubles log-spaced in [lo, hi] inclusive; lo, hi > 0.
std::vector<double> log_spaced(double lo, double hi, std::size_t count);

/// Percentile (q in [0,1]) with linear interpolation; sorts a copy.
double percentile(std::span<const double> values, double q);

/// Means over non-overlapping blocks of size m; trailing partial block is
/// discarded. The aggregated-process operator X^(m) of the paper.
std::vector<double> block_means(std::span<const double> values, std::size_t m);

/// Sums over non-overlapping blocks of size m.
std::vector<double> block_sums(std::span<const double> values, std::size_t m);

/// Sample mean.
double sample_mean(std::span<const double> values);

/// Unbiased (n-1) sample variance.
double sample_variance(std::span<const double> values);

}  // namespace vbr
