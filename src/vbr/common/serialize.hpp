// Minimal binary (de)serialization helpers for checkpoint and sink state.
//
// Every streaming sink and the campaign checkpoint serialize through these
// fixed-width little-endian-on-this-machine primitives so the formats stay
// byte-compatible with each other and trivially round-trip at 0 ulp (doubles
// travel as their raw bit patterns, never through text). Readers treat their
// input as untrusted: any short read or impossible length throws vbr::IoError
// with the caller-supplied context string, matching the trace_io contract.
//
// The format is explicitly single-machine (resume happens on the host that
// crashed); no cross-endianness translation is attempted, and the checkpoint
// CRC rejects files that migrate between incompatible hosts only by luck of
// field validation — documented in DESIGN.md §8.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "vbr/common/error.hpp"

namespace vbr::io {

inline void write_bytes(std::ostream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!out) throw IoError("serialize: write failed");
}

inline void write_u8(std::ostream& out, std::uint8_t v) { write_bytes(out, &v, sizeof v); }
inline void write_u32(std::ostream& out, std::uint32_t v) { write_bytes(out, &v, sizeof v); }
inline void write_u64(std::ostream& out, std::uint64_t v) { write_bytes(out, &v, sizeof v); }

inline void write_f64(std::ostream& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  write_u64(out, bits);
}

/// Length-prefixed string (u32 length + raw bytes).
inline void write_string(std::ostream& out, const std::string& s) {
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  if (!s.empty()) write_bytes(out, s.data(), s.size());
}

/// Length-prefixed vector of raw doubles (u64 count + bit patterns).
inline void write_f64_vector(std::ostream& out, const std::vector<double>& v) {
  write_u64(out, v.size());
  for (const double x : v) write_f64(out, x);
}

inline void write_u64_vector(std::ostream& out, const std::vector<std::uint64_t>& v) {
  write_u64(out, v.size());
  for (const std::uint64_t x : v) write_u64(out, x);
}

inline void read_bytes(std::istream& in, void* data, std::size_t size, const char* what) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (in.gcount() != static_cast<std::streamsize>(size) || !in) {
    throw IoError(std::string(what) + ": truncated serialized state");
  }
}

inline std::uint8_t read_u8(std::istream& in, const char* what) {
  std::uint8_t v = 0;
  read_bytes(in, &v, sizeof v, what);
  return v;
}

inline std::uint32_t read_u32(std::istream& in, const char* what) {
  std::uint32_t v = 0;
  read_bytes(in, &v, sizeof v, what);
  return v;
}

inline std::uint64_t read_u64(std::istream& in, const char* what) {
  std::uint64_t v = 0;
  read_bytes(in, &v, sizeof v, what);
  return v;
}

inline double read_f64(std::istream& in, const char* what) {
  const std::uint64_t bits = read_u64(in, what);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

/// Hard cap on any single serialized container so a forged length can never
/// drive an allocation past what a real sink/checkpoint could hold.
inline constexpr std::uint64_t kMaxSerializedElements = std::uint64_t{1} << 28;

/// Read a declared element count and validate it against both the global cap
/// and a caller-supplied bound (e.g. the sink's configured size).
inline std::size_t read_count(std::istream& in, std::uint64_t max_elements, const char* what) {
  const std::uint64_t n = read_u64(in, what);
  if (n > max_elements || n > kMaxSerializedElements) {
    throw IoError(std::string(what) + ": serialized count " + std::to_string(n) +
                  " exceeds bound " + std::to_string(max_elements));
  }
  return static_cast<std::size_t>(n);
}

inline std::string read_string(std::istream& in, std::uint64_t max_length, const char* what) {
  const std::uint32_t len = read_u32(in, what);
  if (len > max_length) {
    throw IoError(std::string(what) + ": serialized string length " + std::to_string(len) +
                  " exceeds bound " + std::to_string(max_length));
  }
  std::string s(len, '\0');
  if (len > 0) read_bytes(in, s.data(), len, what);
  return s;
}

inline std::vector<double> read_f64_vector(std::istream& in, std::uint64_t max_elements,
                                           const char* what) {
  const std::size_t n = read_count(in, max_elements, what);
  std::vector<double> v(n);
  for (auto& x : v) x = read_f64(in, what);
  return v;
}

inline std::vector<std::uint64_t> read_u64_vector(std::istream& in, std::uint64_t max_elements,
                                                  const char* what) {
  const std::size_t n = read_count(in, max_elements, what);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = read_u64(in, what);
  return v;
}

/// Read a fixed tag (e.g. a sink's kind()) and reject anything else. Keeps a
/// restore from silently consuming another sink's state.
inline void read_tag(std::istream& in, const std::string& expected, const char* what) {
  const std::string got = read_string(in, 64, what);
  if (got != expected) {
    throw IoError(std::string(what) + ": serialized state tagged '" + got +
                  "', expected '" + expected + "'");
  }
}

}  // namespace vbr::io
