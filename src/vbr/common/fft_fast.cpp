#include "vbr/common/fft_fast.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <numbers>
#include <utility>

#include "vbr/common/error.hpp"
#include "vbr/common/fft.hpp"

namespace vbr {
namespace {

using Complex = std::complex<double>;

// Twiddles for one transform size n. `unpack[k]` = exp(+2 pi i k / n) for
// k < n/2 feeds the real-unpacking step; `stages` holds the butterfly
// twiddles exp(+2 pi i j / len) for every stage len = 2, 4, ..., n/2
// concatenated (offset len/2 - 1, j < len/2) so each stage reads its table
// sequentially — the equivalent strided reads into `unpack` walk the whole
// table once per stage and miss cache badly. Only the first quarter circle
// is evaluated with std::polar; the rest comes from cos(pi - x) = -cos(x)
// and table copies, keeping the cold-start build cheap. Immutable once
// built, shared between threads.
struct TwiddlePlan {
  std::vector<Complex> unpack;  // size n/2
  std::vector<Complex> stages;  // size n/2 - 1
};

using Plan = std::shared_ptr<const TwiddlePlan>;

struct PlanCache {
  std::mutex mutex;
  std::map<std::size_t, Plan> entries;
};

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

Plan compute_plan(std::size_t n) {
  const std::size_t half = n / 2;
  auto plan = std::make_shared<TwiddlePlan>();
  auto& w = plan->unpack;
  w.resize(half);
  const std::size_t quarter = half / 2;
  const std::size_t eighth = quarter / 2;
  for (std::size_t k = 0; k <= eighth; ++k) {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    w[k] = std::polar(1.0, angle);
  }
  for (std::size_t k = eighth + 1; k <= quarter; ++k) {
    const Complex& m = w[quarter - k];  // angle = pi/2 - mirror angle
    w[k] = Complex(m.imag(), m.real());
  }
  for (std::size_t k = quarter + 1; k < half; ++k) {
    const Complex& m = w[half - k];  // angle = pi - mirror angle
    w[k] = Complex(-m.real(), m.imag());
  }
  plan->stages.resize(half > 0 ? half - 1 : 0);
  for (std::size_t len = 2; len <= half; len <<= 1) {
    Complex* stage = plan->stages.data() + len / 2 - 1;
    const std::size_t stride = n / len;
    for (std::size_t j = 0; j < len / 2; ++j) stage[j] = w[j * stride];
  }
  return plan;
}

Plan cached_plan(std::size_t n) {
  auto& cache = plan_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mutex);
    const auto it = cache.entries.find(n);
    if (it != cache.entries.end()) return it->second;
  }
  // Compute outside the lock; a racing duplicate builds the identical plan
  // and the first insert wins.
  auto computed = compute_plan(n);
  std::lock_guard<std::mutex> lock(cache.mutex);
  return cache.entries.emplace(n, std::move(computed)).first->second;
}

// Unnormalized inverse complex FFT over a.size() = n/2 points: Stockham
// autosort radix-2 (decimation in frequency). Unlike fft.cpp's in-place
// kernel there is no bit-reversal pass — at 2^16 points that pass alone is
// 64k random-access swaps over a 1 MB array — and every stage streams both
// buffers sequentially, with one twiddle table read per j-block instead of
// the serial w *= wlen accumulation whose dependency chain dominates the
// reference kernel's runtime. Stage with j-block count l reads the length-2l
// stage table, i.e. the tables are consumed from the back of `stages`.
// Two DIF stages (block counts l and l/2) fuse into one pass using
// exp(+2 pi i (j + l/2) / (2l)) = i exp(+2 pi i j / (2l)) and
// exp(+2 pi i j / l) for the second stage; the remaining single stage of an
// odd log2 runs unfused.
void ifft_pow2_tables(std::vector<Complex>& a, const std::vector<Complex>& stages) {
  const std::size_t len_total = a.size();
  if (len_total <= 1) return;
  std::vector<Complex> scratch(len_total);
  Complex* x = a.data();
  Complex* y = scratch.data();
  std::size_t l = len_total / 2;
  std::size_t m = 1;
  for (; l >= 2; l >>= 2, m <<= 2) {
    const Complex* twa = stages.data() + l - 1;      // exp(+2 pi i j / (2l)), j < l
    const Complex* twb = stages.data() + l / 2 - 1;  // exp(+2 pi i j / l), j < l/2
    for (std::size_t j = 0; j < l / 2; ++j) {
      const Complex wa = twa[j];
      const Complex wb = twb[j];
      const Complex* s0 = x + j * m;
      const Complex* s1 = x + (j + l) * m;
      const Complex* s2 = x + (j + l / 2) * m;
      const Complex* s3 = x + (j + 3 * l / 2) * m;
      Complex* dst = y + 4 * j * m;
      for (std::size_t k = 0; k < m; ++k) {
        const Complex u0 = s0[k] + s1[k];
        const Complex u1 = wa * (s0[k] - s1[k]);
        const Complex u2 = s2[k] + s3[k];
        const Complex wu3 = wa * (s2[k] - s3[k]);
        const Complex u3(-wu3.imag(), wu3.real());  // i * wa * (...)
        dst[k] = u0 + u2;
        dst[k + m] = u1 + u3;
        dst[k + 2 * m] = wb * (u0 - u2);
        dst[k + 3 * m] = wb * (u1 - u3);
      }
    }
    std::swap(x, y);
  }
  if (l == 1) {
    // exp(+2 pi i * 0 / 2) = 1: the final stage needs no twiddle.
    for (std::size_t k = 0; k < m; ++k) {
      const Complex c0 = x[k];
      const Complex c1 = x[k + m];
      y[k] = c0 + c1;
      y[k + m] = c0 - c1;
    }
    std::swap(x, y);
  }
  if (x != a.data()) std::copy(x, x + len_total, a.data());
}

}  // namespace

std::vector<double> fast_irfft_pow2(const std::vector<Complex>& spectrum, std::size_t n) {
  VBR_ENSURE(n >= 2 && is_power_of_two(n), "fast_irfft_pow2 requires a power-of-two n >= 2");
  VBR_ENSURE(spectrum.size() == n / 2 + 1,
             "fast_irfft_pow2 spectrum must hold exactly n/2 + 1 coefficients");
  const auto plan = cached_plan(n);
  const auto& w = plan->unpack;
  const std::size_t half = n / 2;

  // Same half-length packing as irfft(): recover Z[k] = E[k] + i O[k] from
  // X[k] and conj(X[L-k]), with the full transform's 1/n normalization
  // folded into the 0.5 unpacking weight (0.5 / L = 1/n per subsequence).
  const double weight = 0.5 / static_cast<double>(half);
  std::vector<Complex> z(half);
  for (std::size_t k = 0; k < half; ++k) {
    const Complex xk = spectrum[k];
    const Complex xc = std::conj(spectrum[half - k]);
    const Complex even = weight * (xk + xc);
    const Complex odd = w[k] * (weight * (xk - xc));
    z[k] = Complex(even.real() - odd.imag(), even.imag() + odd.real());
  }
  ifft_pow2_tables(z, plan->stages);

  std::vector<double> out(n);
  for (std::size_t j = 0; j < half; ++j) {
    out[2 * j] = z[j].real();
    out[2 * j + 1] = z[j].imag();
  }
  return out;
}

std::size_t fast_fft_plan_cache_size() {
  auto& cache = plan_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  return cache.entries.size();
}

void fast_fft_plan_cache_clear() {
  auto& cache = plan_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  cache.entries.clear();
}

}  // namespace vbr
