// Error handling primitives for the vbr library.
//
// The library reports contract violations and unrecoverable runtime failures
// with exceptions derived from vbr::Error. Hot inner loops use assertions via
// VBR_ENSURE only at API boundaries so release builds stay fast.
#pragma once

#include <stdexcept>
#include <string>

namespace vbr {

/// Base class for all exceptions thrown by the vbr library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an I/O operation (trace file read/write) fails.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine fails to converge or leaves its domain.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid_argument(const char* expr, const char* file, int line,
                                                const std::string& msg) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": precondition failed: (" + expr + ") " + msg);
}
}  // namespace detail

}  // namespace vbr

/// Validate a precondition at an API boundary; throws vbr::InvalidArgument.
#define VBR_ENSURE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::vbr::detail::throw_invalid_argument(#expr, __FILE__, __LINE__, msg); \
    }                                                                      \
  } while (false)
