// Error handling and contract-checking primitives for the vbr library.
//
// The library reports contract violations and unrecoverable runtime failures
// with exceptions derived from vbr::Error. Checks come in two tiers:
//
//   VBR_ENSURE(expr, msg)   Boundary contract, always on. Use at API entry
//                           points where the cost is amortized over the call.
//   VBR_DCHECK(expr, msg)   Hot-loop contract, compiled out in Release
//                           (NDEBUG) builds unless VBR_FORCE_DCHECKS is
//                           defined (sanitizer builds force it on so the
//                           instrumented suites exercise every check).
//
// Numeric guards for the quantities the reproduction's headline figures rest
// on (always on — use at boundaries, not per-sample):
//
//   VBR_CHECK_FINITE(v, msg)         v is neither NaN nor infinite
//   VBR_CHECK_PROB(p, msg)           p is a probability in [0, 1]
//   VBR_CHECK_RANGE(v, lo, hi, msg)  v lies in [lo, hi]
//
// check_finite_series() scans a whole input span; estimators call it once at
// entry so a silent NaN cannot propagate into a Hurst estimate or tail fit.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>

namespace vbr {

/// Base class for all exceptions thrown by the vbr library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an I/O operation (trace file read/write) fails.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// An IoError the thrower believes is worth retrying (e.g. a momentary sink
/// back-pressure failure). The engine's FailurePolicy retries these with
/// bounded backoff; any other exception is permanent and quarantines the
/// source immediately.
class TransientError : public IoError {
 public:
  explicit TransientError(const std::string& what) : IoError(what) {}
};

/// Thrown when a numerical routine fails to converge or leaves its domain.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid_argument(const char* expr, const char* file, int line,
                                                const std::string& msg) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": precondition failed: (" + expr + ") " + msg);
}

[[noreturn]] inline void throw_numerical(const char* expr, const char* file, int line,
                                         const std::string& msg, double value) {
  throw NumericalError(std::string(file) + ":" + std::to_string(line) +
                       ": numeric contract failed: (" + expr + ") = " +
                       std::to_string(value) + " " + msg);
}
}  // namespace detail

/// Throw NumericalError if any element of `data` is NaN or infinite. Call at
/// estimator/model boundaries so bad samples fail loudly with an index
/// instead of corrupting downstream statistics.
inline void check_finite_series(std::span<const double> data, const char* what) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!std::isfinite(data[i])) {
      throw NumericalError(std::string(what) + ": non-finite sample at index " +
                           std::to_string(i));
    }
  }
}

}  // namespace vbr

/// Validate a precondition at an API boundary; throws vbr::InvalidArgument.
#define VBR_ENSURE(expr, msg)                                                 \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::vbr::detail::throw_invalid_argument(#expr, __FILE__, __LINE__, msg);  \
    }                                                                         \
  } while (false)

// VBR_DCHECK_ENABLED is 1 when VBR_DCHECK is an active check, 0 when it
// expands to nothing. Release (NDEBUG) builds compile it out; defining
// VBR_FORCE_DCHECKS (done automatically by sanitizer builds) forces it on.
#if defined(VBR_FORCE_DCHECKS) || !defined(NDEBUG)
#define VBR_DCHECK_ENABLED 1
#else
#define VBR_DCHECK_ENABLED 0
#endif

/// Hot-loop contract: identical to VBR_ENSURE in checked builds, compiled out
/// (expression not evaluated) in Release builds.
#if VBR_DCHECK_ENABLED
#define VBR_DCHECK(expr, msg) VBR_ENSURE(expr, msg)
#else
#define VBR_DCHECK(expr, msg)     \
  do {                            \
    (void)sizeof((expr) ? 1 : 0); \
  } while (false)
#endif

/// Numeric guard: `value` must be finite (neither NaN nor +-inf).
#define VBR_CHECK_FINITE(value, msg)                                             \
  do {                                                                           \
    const double vbr_chk_v_ = (value);                                           \
    if (!std::isfinite(vbr_chk_v_)) {                                            \
      ::vbr::detail::throw_numerical(#value, __FILE__, __LINE__, msg, vbr_chk_v_); \
    }                                                                            \
  } while (false)

/// Numeric guard: `value` must be a probability in [0, 1] (NaN fails).
#define VBR_CHECK_PROB(value, msg)                                               \
  do {                                                                           \
    const double vbr_chk_v_ = (value);                                           \
    if (!(vbr_chk_v_ >= 0.0 && vbr_chk_v_ <= 1.0)) {                             \
      ::vbr::detail::throw_numerical(#value, __FILE__, __LINE__, msg, vbr_chk_v_); \
    }                                                                            \
  } while (false)

/// Numeric guard: `value` must lie in [lo, hi] (NaN fails).
#define VBR_CHECK_RANGE(value, lo, hi, msg)                                      \
  do {                                                                           \
    const double vbr_chk_v_ = (value);                                           \
    if (!(vbr_chk_v_ >= (lo) && vbr_chk_v_ <= (hi))) {                           \
      ::vbr::detail::throw_numerical(#value, __FILE__, __LINE__, msg, vbr_chk_v_); \
    }                                                                            \
  } while (false)
