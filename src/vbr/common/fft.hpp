// Fast Fourier transform for arbitrary lengths.
//
// Power-of-two lengths use an iterative radix-2 Cooley-Tukey kernel; all other
// lengths go through Bluestein's chirp-z algorithm (which reduces to three
// power-of-two FFTs). This supports the periodogram of the 171,000-frame
// trace, FFT-based autocorrelation, and the Davies-Harte fGn generator.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace vbr {

/// In-place forward DFT: X[k] = sum_j x[j] exp(-2*pi*i*j*k / n).
/// Works for any n >= 1.
void fft(std::vector<std::complex<double>>& data);

/// In-place inverse DFT, normalized by 1/n: exact inverse of fft().
void ifft(std::vector<std::complex<double>>& data);

/// Forward DFT of a real sequence; returns all n complex coefficients.
std::vector<std::complex<double>> fft_real(const std::vector<double>& data);

/// Forward DFT of a real sequence, returning only the n/2 + 1 non-redundant
/// coefficients X[0..n/2] (the rest follow from X[n-k] = conj(X[k])). Even
/// lengths use the half-length complex trick — one complex FFT of length
/// n/2 — so this costs about half of fft() on the same input. Works for any
/// n >= 1 (odd lengths fall back to a full complex transform).
std::vector<std::complex<double>> rfft(const std::vector<double>& data);

/// Exact inverse of rfft(): reconstruct the length-n real sequence from its
/// floor(n/2) + 1 leading DFT coefficients. The spectrum is assumed
/// conjugate-symmetric (X[0] — and X[n/2] for even n — should be real;
/// imaginary parts there are ignored). Normalized by 1/n like ifft().
std::vector<double> irfft(const std::vector<std::complex<double>>& spectrum, std::size_t n);

/// Smallest power of two >= n (n >= 1).
std::size_t next_power_of_two(std::size_t n);

/// True iff n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

}  // namespace vbr
