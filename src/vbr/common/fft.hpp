// Fast Fourier transform for arbitrary lengths.
//
// Power-of-two lengths use an iterative radix-2 Cooley-Tukey kernel; all other
// lengths go through Bluestein's chirp-z algorithm (which reduces to three
// power-of-two FFTs). This supports the periodogram of the 171,000-frame
// trace, FFT-based autocorrelation, and the Davies-Harte fGn generator.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace vbr {

/// In-place forward DFT: X[k] = sum_j x[j] exp(-2*pi*i*j*k / n).
/// Works for any n >= 1.
void fft(std::vector<std::complex<double>>& data);

/// In-place inverse DFT, normalized by 1/n: exact inverse of fft().
void ifft(std::vector<std::complex<double>>& data);

/// Forward DFT of a real sequence; returns all n complex coefficients.
std::vector<std::complex<double>> fft_real(const std::vector<double>& data);

/// Smallest power of two >= n (n >= 1).
std::size_t next_power_of_two(std::size_t n);

/// True iff n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

}  // namespace vbr
