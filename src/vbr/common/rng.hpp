// Seeded pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (traffic generators, the synthetic
// movie, simulation lag draws) take an explicit Rng so that every experiment
// in bench/ is exactly reproducible from its seed. The core generator is
// xoshiro256**, seeded through splitmix64; independent streams for
// multi-source simulations are derived with split().
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>

namespace vbr {

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can also
/// be used with <random> distributions, but the built-in helpers below are
/// deterministic across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed (expanded via splitmix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Derive an independent child stream. Deterministic: the parent state
  /// advances, and the child is seeded from the drawn value.
  Rng split();

  /// Raw xoshiro256** state words, for checkpoint serialization. Only valid
  /// for streams with no cached normal pair (e.g. a fresh split()); taking
  /// the state of a stream mid-normal-pair throws vbr::InvalidArgument so a
  /// checkpoint can never silently drop half a draw.
  std::array<std::uint64_t, 4> state() const;

  /// Reconstruct a stream from state() words (never through the seed
  /// expansion). from_state(r.state()) produces the same draws as r.
  static Rng from_state(const std::array<std::uint64_t, 4>& state);

  /// Serialize the *complete* stream state — the four xoshiro words plus any
  /// cached Normal deviate — so a stream can be checkpointed at an arbitrary
  /// instant, including mid-normal-pair where state() would throw. The
  /// streaming-source checkpoints (src/vbr/service/) need exactly this:
  /// restore() + continued draws reproduce the original stream bit-for-bit.
  void save(std::ostream& out) const;

  /// Inverse of save(). Throws vbr::IoError on truncation or a corrupt
  /// cached-normal flag; on failure this stream is left unchanged.
  void restore(std::istream& in);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard Normal deviate (polar Marsaglia method, cached pair).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential deviate with the given rate lambda > 0.
  double exponential(double lambda);

  /// Pareto deviate with minimum k > 0 and shape a > 0.
  double pareto(double k, double a);

  /// Gamma deviate with shape s > 0 and scale theta > 0
  /// (Marsaglia-Tsang method, with Johnk boost for s < 1).
  double gamma(double shape, double scale);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace vbr
