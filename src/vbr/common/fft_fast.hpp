// Table-driven power-of-two FFT kernels for throughput-critical paths.
//
// fft.cpp's kernels generate stage twiddles by serial complex multiplication
// (w *= wlen), which is a long floating-point dependency chain — correct, but
// several times slower than reading precomputed std::polar() tables, and the
// two evaluation orders differ in the last ulps. The outputs of fft.cpp are
// pinned by golden determinism hashes (Davies-Harte -> engine trace hashes),
// so they cannot change; this header is the separate opt-in fast path for new
// code with no bit-compatibility burden (Paxson synthesis, future SIMD work).
//
// Same transform and normalization contract as irfft(); results agree with
// irfft() to ~1e-12 relative, not bit-for-bit.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace vbr {

/// Inverse real FFT for power-of-two n >= 2. `spectrum` holds the
/// non-redundant half, exactly n/2 + 1 coefficients, and the conjugate
/// mirror is implied; includes the 1/n normalization, matching irfft().
/// Twiddle tables are cached per n, process-wide and thread-safe.
std::vector<double> fast_irfft_pow2(const std::vector<std::complex<double>>& spectrum,
                                    std::size_t n);

/// Number of cached twiddle plans (tests/diagnostics).
std::size_t fast_fft_plan_cache_size();

/// Drop every cached twiddle plan (tests; e.g. forcing a cold-cache timing).
void fast_fft_plan_cache_clear();

}  // namespace vbr
