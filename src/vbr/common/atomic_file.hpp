// Atomic file replacement: the one sanctioned way to write checkpoint and
// benchmark artifacts.
//
// write_file_atomic() stages the content in a sibling temp file, flushes
// (and optionally fsyncs) it, then renames it over the destination. POSIX
// rename within one directory is atomic, so a reader — or a resumed run —
// sees either the previous complete file or the new complete file, never a
// prefix. A process killed mid-write leaves at worst a stale .tmp sibling.
//
// Domain lint rule R6 forbids direct std::ofstream writes of such artifacts
// anywhere else; route new artifact writers through this helper.
#pragma once

#include <filesystem>
#include <string_view>

namespace vbr {

/// Atomically replace `path` with `data`. With `durable`, the temp file is
/// fsync'd before the rename so the content survives power loss, not just
/// process death. Throws vbr::IoError on failure (temp file cleaned up).
void write_file_atomic(const std::filesystem::path& path, std::string_view data,
                       bool durable = false);

}  // namespace vbr
