#include "vbr/common/atomic_file.hpp"

#include <fstream>
#include <string>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "vbr/common/error.hpp"

namespace vbr {
namespace {

void remove_quietly(const std::filesystem::path& p) {
  std::error_code ignored;
  std::filesystem::remove(p, ignored);
}

/// Flush `path`'s data to stable storage. Returns false where unsupported.
bool fsync_path(const std::filesystem::path& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return false;
  const int rc = ::fsync(fd);
  ::close(fd);
  return rc == 0;
#else
  (void)path;
  return true;  // no portable fsync; flush-on-close is the best we have
#endif
}

}  // namespace

void write_file_atomic(const std::filesystem::path& path, std::string_view data,
                       bool durable) {
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot open for writing: " + tmp.string());
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) {
      remove_quietly(tmp);
      throw IoError("write failed: " + tmp.string());
    }
  }
  if (durable && !fsync_path(tmp)) {
    remove_quietly(tmp);
    throw IoError("fsync failed: " + tmp.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    remove_quietly(tmp);
    throw IoError("rename failed: " + tmp.string() + " -> " + path.string() + ": " +
                  ec.message());
  }
}

}  // namespace vbr
