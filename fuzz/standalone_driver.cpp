// Standalone driver for the fuzz harnesses when libFuzzer is unavailable
// (GCC has no -fsanitize=fuzzer). Replays every file in the given corpus
// directories, then runs a seeded, fully deterministic mutation loop over
// the corpus — byte flips, truncations, extensions, and splices — feeding
// each variant to LLVMFuzzerTestOneInput. Not coverage-guided, but combined
// with ASan/UBSan it still shakes out parser bugs, and determinism makes
// every failure a one-command repro:
//
//   fuzz_foo CORPUS_DIR... [-runs=N] [-seed=S] [FILE...]
//
// The flag spelling matches libFuzzer's, so scripts/check.sh can invoke a
// harness the same way whether it was linked against libFuzzer (Clang) or
// this driver (GCC).
//
// A bare file argument is replayed only (regression mode for checked-in
// crash reproducers). Exit status is nonzero if the harness aborts or a
// sanitizer fires (both terminate the process).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "vbr/common/rng.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

using Input = std::vector<std::uint8_t>;

Input read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return Input(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

constexpr std::size_t kMaxInputBytes = 1 << 16;

// One deterministic mutation of a corpus member. Mirrors libFuzzer's core
// mutators at a much smaller scale.
Input mutate(const Input& base, vbr::Rng& rng) {
  Input out = base;
  const std::uint64_t op = rng.uniform_index(4);
  switch (op) {
    case 0: {  // flip 1..8 bytes
      if (out.empty()) break;
      const std::uint64_t flips = 1 + rng.uniform_index(8);
      for (std::uint64_t f = 0; f < flips; ++f) {
        out[rng.uniform_index(out.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform_index(255));
      }
      break;
    }
    case 1: {  // truncate
      if (out.empty()) break;
      out.resize(rng.uniform_index(out.size() + 1));
      break;
    }
    case 2: {  // append random bytes
      const std::uint64_t extra = 1 + rng.uniform_index(64);
      for (std::uint64_t e = 0; e < extra && out.size() < kMaxInputBytes; ++e) {
        out.push_back(static_cast<std::uint8_t>(rng.uniform_index(256)));
      }
      break;
    }
    default: {  // overwrite a window with random bytes
      if (out.empty()) break;
      const std::size_t start = rng.uniform_index(out.size());
      const std::size_t len = 1 + rng.uniform_index(out.size() - start);
      for (std::size_t i = start; i < start + len; ++i) {
        out[i] = static_cast<std::uint8_t>(rng.uniform_index(256));
      }
      break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Input> corpus;
  std::uint64_t runs = 10000;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg == "--runs" && i + 1 < argc) {
      runs = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());  // directory order is not deterministic
      for (const auto& f : files) corpus.push_back(read_file(f));
    } else if (std::filesystem::is_regular_file(arg)) {
      corpus.push_back(read_file(arg));
    } else {
      std::fprintf(stderr, "fuzz driver: no such corpus: %s\n", arg.c_str());
      return 2;
    }
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "usage: %s CORPUS_DIR... [-runs=N] [-seed=S]\n", argv[0]);
    return 2;
  }

  // Replay the corpus verbatim (regression pass), then mutate.
  std::uint64_t execs = 0;
  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++execs;
  }
  vbr::Rng rng(seed);
  for (std::uint64_t r = 0; r < runs; ++r) {
    const Input variant = mutate(corpus[rng.uniform_index(corpus.size())], rng);
    LLVMFuzzerTestOneInput(variant.data(), variant.size());
    ++execs;
  }
  std::printf("%s: %llu execs (corpus %zu, seed %llu) — no crashes\n", argv[0],
              static_cast<unsigned long long>(execs), corpus.size(),
              static_cast<unsigned long long>(seed));
  return 0;
}
