// Fuzz harness: run-length decode of zig-zag AC coefficients.
//
// Input: a stream of 3-byte records (run, level_lo, level_hi) interpreted
// as RleSymbols, decoded into a 63-coefficient block. On success the result
// is re-encoded and decoded again; the round trip must be exact — RLE is
// lossless by construction, so any divergence is a real bug, not noise.
// vbr::Error is the documented rejection path for malformed symbol streams.
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "vbr/codec/rle.hpp"
#include "vbr/common/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  constexpr std::size_t kAcCoefficients = 63;

  std::vector<vbr::codec::RleSymbol> symbols;
  symbols.reserve(size / 3);
  for (std::size_t i = 0; i + 2 < size; i += 3) {
    vbr::codec::RleSymbol s;
    s.run = data[i];
    s.level = static_cast<std::int16_t>(data[i + 1] | (data[i + 2] << 8));
    symbols.push_back(s);
  }

  try {
    const auto coeffs = vbr::codec::rle_decode_ac(symbols, kAcCoefficients);
    if (coeffs.size() != kAcCoefficients) std::abort();
    const auto re_encoded = vbr::codec::rle_encode_ac(coeffs);
    const auto round_trip = vbr::codec::rle_decode_ac(re_encoded, kAcCoefficients);
    if (round_trip != coeffs) std::abort();
  } catch (const vbr::Error&) {
    // Malformed symbol stream (overrun, bad run length): the documented path.
  }
  return 0;
}
