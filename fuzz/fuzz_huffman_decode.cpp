// Fuzz harness: canonical Huffman table construction + bitstream decode.
//
// Input layout: byte 0 selects the alphabet size (1..64), the next
// `alphabet` bytes are symbol frequencies, and the remainder is the bit
// stream to decode. The harness builds a code from the (attacker-chosen)
// frequency table, then decodes the stream to exhaustion, re-encoding each
// decoded symbol as a round-trip invariant. vbr::Error is the contract for
// malformed input; any other escape (UB, OOB, non-vbr exception) crashes
// the process and fails the run.
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "vbr/codec/huffman.hpp"
#include "vbr/common/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 2) return 0;
  const std::size_t alphabet = 1 + data[0] % 64;
  if (size < 1 + alphabet) return 0;

  std::vector<std::uint64_t> freqs(alphabet);
  for (std::size_t s = 0; s < alphabet; ++s) freqs[s] = data[1 + s];

  try {
    const auto code = vbr::codec::HuffmanCode::build(freqs, 16);
    vbr::codec::BitReader reader({data + 1 + alphabet, size - 1 - alphabet});
    vbr::codec::BitWriter writer;
    for (int i = 0; i < 1 << 14; ++i) {
      const std::size_t symbol = code.decode(reader);
      // Decoded symbols must exist in the code's alphabet with a real code.
      if (symbol >= alphabet || code.length(symbol) == 0) std::abort();
      code.encode(writer, symbol);
    }
  } catch (const vbr::Error&) {
    // Malformed table or exhausted/invalid bit stream: the documented path.
  }
  return 0;
}
