// Fuzz harness: the chunked streaming trace reader.
//
// The whole input is handed to ChunkedTraceReader, which sniffs the format
// itself (magic bytes -> binary, else ASCII), so one harness exercises both
// paths plus the sniffing boundary — truncated headers, forged sample
// counts, mid-stream corruption. Every sample the reader yields must obey
// the trace contract (finite, non-negative); byte 0 varies the read block
// size so chunk-boundary handling is fuzzed too. vbr::IoError is the
// documented rejection path.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/trace/trace_stream.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 1) return 0;
  const std::size_t block = 1 + (data[0] & 0x3f);  // 1..64 samples per read
  std::istringstream in(std::string(reinterpret_cast<const char*>(data + 1), size - 1));

  try {
    vbr::trace::ChunkedTraceReader reader(in, "fuzz");
    if (!(reader.info().dt_seconds > 0.0) || !std::isfinite(reader.info().dt_seconds)) {
      std::abort();
    }
    std::vector<double> buf(block);
    std::uint64_t total = 0;
    while (true) {
      const std::size_t got = reader.read(buf);
      if (got == 0) break;
      for (std::size_t i = 0; i < got; ++i) {
        if (!std::isfinite(buf[i]) || buf[i] < 0.0) std::abort();
      }
      total += got;
    }
    if (total != reader.samples_read()) std::abort();
    if (reader.info().binary && total != reader.info().declared_samples) std::abort();
  } catch (const vbr::Error&) {
    // Malformed trace: the documented path.
  }
  return 0;
}
