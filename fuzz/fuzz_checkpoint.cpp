// Fuzz harness: the campaign checkpoint parser.
//
// Two paths per input. First the raw bytes go straight into
// parse_checkpoint(), exercising the envelope (magic, version, size, CRC).
// Because a random mutation almost never survives the CRC, the input is
// then re-wrapped as the *payload* of a freshly sealed envelope — valid
// magic/version/size/CRC computed here — so the field-level validation
// (forged counts, impossible progress, oversized strings, trailing bytes)
// is reached on every exec, not one in four billion.
//
// The invariant under test: any input either parses into a CheckpointData
// that satisfies the documented field invariants, or throws vbr::IoError.
// Anything else — a crash, a sanitizer report, partial state — is a bug.
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "vbr/common/checksum.hpp"
#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"
#include "vbr/run/checkpoint.hpp"

namespace {

void check_invariants(const vbr::run::CheckpointData& data) {
  if (data.next_source > data.num_sources) std::abort();
  if (data.samples_written != data.next_source * data.frames_per_source) std::abort();
  if (data.stream_states.size() != data.num_sources - data.next_source) std::abort();
  if (data.failures.size() > data.num_sources) std::abort();
  if (!data.has_sink && !data.sink_state.empty()) std::abort();
}

void try_parse(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  try {
    check_invariants(vbr::run::parse_checkpoint(in, "fuzz"));
  } catch (const vbr::IoError&) {
    // Malformed checkpoint: the documented rejection path.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string raw(reinterpret_cast<const char*>(data), size);

  // Path 1: the input is the whole file, envelope included.
  try_parse(raw);

  // Path 2: the input is the payload of a correctly sealed envelope.
  std::ostringstream sealed(std::ios::binary);
  vbr::io::write_bytes(sealed, vbr::run::kCheckpointMagic.data(),
                       vbr::run::kCheckpointMagic.size());
  vbr::io::write_u32(sealed, vbr::run::kCheckpointVersion);
  vbr::io::write_u64(sealed, raw.size());
  vbr::io::write_u32(sealed, vbr::crc32(raw.data(), raw.size()));
  vbr::io::write_bytes(sealed, raw.data(), raw.size());
  try_parse(sealed.str());

  return 0;
}
