// Fuzz harness: the sweep manifest parser.
//
// Two paths per input, mirroring fuzz_checkpoint. First the raw bytes go
// straight into parse_manifest(), exercising the shared envelope (magic,
// version, size, CRC). Because a random mutation almost never survives the
// CRC, the input is then re-wrapped as the *payload* of a freshly sealed
// envelope — valid magic/version/size/CRC computed here — so the
// field-level validation (forged cell counts, out-of-range indexes,
// non-monotone record order, bogus status/kind tags, oversized strings,
// trailing bytes) is reached on every exec, not one in four billion.
//
// The invariant under test: any input either parses into a SweepManifest
// that satisfies the documented record invariants, or throws vbr::IoError.
// Anything else — a crash, a sanitizer report, partial state — is a bug.
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "vbr/common/checksum.hpp"
#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"
#include "vbr/sweep/manifest.hpp"

namespace {

void check_invariants(const vbr::sweep::SweepManifest& manifest) {
  if (manifest.total_cells == 0) std::abort();
  if (manifest.records.size() > manifest.total_cells) std::abort();
  std::uint64_t previous = 0;
  bool first = true;
  for (const vbr::sweep::CellRecord& record : manifest.records) {
    if (record.cell_index >= manifest.total_cells) std::abort();
    if (!first && record.cell_index <= previous) std::abort();
    previous = record.cell_index;
    first = false;
    if (record.status != vbr::sweep::CellStatus::kDone &&
        record.status != vbr::sweep::CellStatus::kQuarantined) {
      std::abort();
    }
  }
}

void try_parse(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  try {
    check_invariants(vbr::sweep::parse_manifest(in, "fuzz"));
  } catch (const vbr::IoError&) {
    // Malformed manifest: the documented rejection path.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string raw(reinterpret_cast<const char*>(data), size);

  // Path 1: the input is the whole file, envelope included.
  try_parse(raw);

  // Path 2: the input is the payload of a correctly sealed envelope.
  std::ostringstream sealed(std::ios::binary);
  vbr::io::write_bytes(sealed, vbr::sweep::kManifestMagic.data(),
                       vbr::sweep::kManifestMagic.size());
  vbr::io::write_u32(sealed, vbr::sweep::kManifestVersion);
  vbr::io::write_u64(sealed, raw.size());
  vbr::io::write_u32(sealed, vbr::crc32(raw.data(), raw.size()));
  vbr::io::write_bytes(sealed, raw.data(), raw.size());
  try_parse(sealed.str());

  return 0;
}
