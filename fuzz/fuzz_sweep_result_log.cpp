// Fuzz harness: the VBRSWPL1 result-log scanner.
//
// Three paths per input, extending the fuzz_sweep_manifest dual-path trick
// to an append-only format. First the raw bytes go straight into
// scan_result_log(), exercising the sealed-header envelope (magic, version,
// size, CRC) and the header field validation. Because a random mutation
// almost never survives the header CRC, the input is then replayed as the
// *record stream* behind a freshly sealed valid header — so the frame
// scanner (torn headers, forged sizes, CRC mismatches, interleaved whole
// records) runs on every exec. Finally the input is wrapped as the payload
// of one correctly framed record behind that header, driving the
// record-level validation (out-of-range indexes, bogus status/kind tags,
// oversized strings, trailing payload bytes) directly.
//
// The invariant under test: any input either throws vbr::IoError, or
// returns a ResultLogScan whose records are strictly ascending inside the
// header's shard range and whose valid/torn byte split tiles the stream
// exactly. Anything else — a crash, a sanitizer report, an out-of-range
// record surviving the scan — is a bug.
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "vbr/common/error.hpp"
#include "vbr/run/envelope.hpp"
#include "vbr/sweep/result_log.hpp"

namespace {

vbr::sweep::ResultLogHeader fuzz_header() {
  vbr::sweep::ResultLogHeader header;
  header.sweep_fingerprint = 0x5157454550313934ULL;
  header.shard_fingerprint = 0x53484152443031ULL;
  header.total_cells = 64;
  header.shard_count = 4;
  header.shard_index = 1;
  header.first_cell = 16;
  header.end_cell = 32;
  return header;
}

void check_invariants(const vbr::sweep::ResultLogScan& scan, std::size_t input_size) {
  if (scan.valid_bytes < vbr::sweep::kLogHeaderSealedBytes) std::abort();
  if (scan.valid_bytes + scan.torn_bytes != input_size) std::abort();
  std::uint64_t previous = 0;
  bool first = true;
  for (const vbr::sweep::CellRecord& record : scan.records) {
    if (record.cell_index < scan.header.first_cell ||
        record.cell_index >= scan.header.end_cell) {
      std::abort();
    }
    if (!first && record.cell_index <= previous) std::abort();
    previous = record.cell_index;
    first = false;
    if (record.status != vbr::sweep::CellStatus::kDone &&
        record.status != vbr::sweep::CellStatus::kQuarantined) {
      std::abort();
    }
  }
}

void try_scan(const std::string& bytes, const vbr::sweep::ResultLogHeader* expected) {
  std::istringstream in(bytes, std::ios::binary);
  try {
    check_invariants(vbr::sweep::scan_result_log(in, "fuzz", expected), bytes.size());
  } catch (const vbr::IoError&) {
    // Malformed log: the documented rejection path.
  }
}

std::string sealed_fuzz_header() {
  const vbr::run::EnvelopeSpec spec{vbr::sweep::kResultLogMagic,
                                    vbr::sweep::kResultLogVersion,
                                    vbr::sweep::kLogHeaderPayloadBytes,
                                    "sweep result log"};
  return vbr::run::seal_envelope(spec,
                                 vbr::sweep::encode_log_header(fuzz_header()));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string raw(reinterpret_cast<const char*>(data), size);
  const vbr::sweep::ResultLogHeader header = fuzz_header();

  // Path 1: the input is the whole log, sealed header included.
  try_scan(raw, nullptr);

  // Path 2: the input is the record stream behind a valid sealed header.
  const std::string sealed = sealed_fuzz_header();
  try_scan(sealed + raw, &header);

  // Path 3: the input is the payload of one correctly framed record.
  try_scan(sealed + vbr::run::seal_record(raw), &header);

  return 0;
}
