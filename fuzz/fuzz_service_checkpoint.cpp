// Fuzz harness: the VBRSRVC1 service checkpoint parser.
//
// Three paths per input, mirroring fuzz_checkpoint's dual-path pattern plus
// a splice stage. First the raw bytes go straight through the envelope
// check (magic, version, size bound, CRC). Because a random mutation almost
// never survives the CRC, the input is then re-sealed as the *payload* of a
// valid envelope so TrafficService::restore_state's field validation — the
// config fingerprint, stream statuses, per-stream state tags, heap
// invariants — is reached on every exec. Finally the input is XOR-spliced
// into a pristine checkpoint payload and re-sealed, so mutations land deep
// inside otherwise-valid per-stream state instead of dying at the
// fingerprint.
//
// The invariant under test: any input either restores a service that keeps
// serving, or throws vbr::IoError. Anything else — a crash, a sanitizer
// report, an abort from a VBR_ENSURE — is a bug (hostile checkpoints must
// be a clean rejection path, never a contract violation).
#include <cstdint>
#include <sstream>
#include <string>

#include "vbr/common/error.hpp"
#include "vbr/run/envelope.hpp"
#include "vbr/service/service_checkpoint.hpp"
#include "vbr/service/traffic_service.hpp"

namespace {

vbr::service::ServiceConfig harness_config() {
  // Must match the config scripts/make_service_fuzz_corpus.py seeds the
  // corpus with (serve_traffic's defaults at 4 streams).
  vbr::service::ServiceConfig config;
  config.num_streams = 4;
  config.seed = 42;
  config.variant = vbr::model::ModelVariant::kGaussianFarima;
  config.backend = vbr::model::GeneratorBackend::kHosking;
  config.params.hurst = 0.8;
  config.params.marginal.mu_gamma = 27791.0;
  config.params.marginal.sigma_gamma = 6254.0;
  config.params.marginal.tail_slope = 12.0;
  return config;
}

/// A pristine two-round checkpoint payload, built once: the splice target.
const std::string& pristine_payload() {
  static const std::string payload = [] {
    vbr::service::TrafficService service(harness_config());
    service.advance_round(16);
    service.advance_round(16);
    std::ostringstream out(std::ios::binary);
    service.save_state(out);
    return out.str();
  }();
  return payload;
}

void try_restore(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  try {
    const std::string payload =
        vbr::run::open_envelope(in, vbr::service::service_checkpoint_envelope(), "fuzz");
    vbr::service::TrafficService service(harness_config());
    std::istringstream payload_in(payload, std::ios::binary);
    service.restore_state(payload_in);
    // A checkpoint that parses must leave a service that can serve.
    service.advance_round(8);
    (void)service.results_hash();
  } catch (const vbr::IoError&) {
    // Malformed checkpoint: the documented rejection path.
  }
}

std::string sealed(const std::string& payload) {
  return vbr::run::seal_envelope(vbr::service::service_checkpoint_envelope(), payload);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string raw(reinterpret_cast<const char*>(data), size);

  // Path 1: the input is the whole file, envelope included.
  try_restore(raw);

  // Path 2: the input is the payload of a correctly sealed envelope.
  try_restore(sealed(raw));

  // Path 3: the input is XOR-spliced into a pristine payload (offset from
  // its first two bytes), then sealed — deep-state mutations with a valid
  // fingerprint prefix.
  if (size >= 3) {
    std::string payload = pristine_payload();
    const std::size_t offset =
        (static_cast<std::size_t>(data[0]) | (static_cast<std::size_t>(data[1]) << 8)) %
        payload.size();
    for (std::size_t i = 2; i < size && offset + (i - 2) < payload.size(); ++i) {
      payload[offset + (i - 2)] = static_cast<char>(payload[offset + (i - 2)] ^ data[i]);
    }
    try_restore(sealed(payload));
  }

  return 0;
}
