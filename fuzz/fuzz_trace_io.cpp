// Fuzz harness: trace file parsing (ASCII and binary formats).
//
// Byte 0 selects the format; the rest of the input is fed to the parser
// through a stringstream. A successful parse must yield a series that obeys
// the format's contract — finite, non-negative samples and a positive dt —
// anything else means the validation in trace_io let corruption through.
// vbr::IoError (a vbr::Error) is the documented rejection path.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "vbr/common/error.hpp"
#include "vbr/trace/trace_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 1) return 0;
  const bool binary = (data[0] & 1) != 0;
  std::istringstream in(std::string(reinterpret_cast<const char*>(data + 1), size - 1));

  try {
    const auto series = binary ? vbr::trace::read_binary(in, "fuzz")
                               : vbr::trace::read_ascii(in, "fuzz");
    if (!(series.dt_seconds() > 0.0) || !std::isfinite(series.dt_seconds())) std::abort();
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (!std::isfinite(series[i]) || series[i] < 0.0) std::abort();
    }
  } catch (const vbr::Error&) {
    // Malformed trace: the documented path.
  }
  return 0;
}
