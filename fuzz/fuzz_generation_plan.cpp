// Fuzz harness: the plan-text parser (engine/plan_text.hpp), the surface the
// generate_many --plan flag hands to arbitrary user files.
//
// The invariant under test: for any input text, parse_plan_text() either
// throws vbr::InvalidArgument or returns a GenerationPlan whose documented
// field invariants hold (positive counts, H strictly inside (0, 1), a
// generator name that resolves in the zoo registry) AND whose canonical text
// form round-trips — format_plan_text() of the result re-parses to a plan
// with the identical checkpoint fingerprint. Anything else — a crash, any
// other exception type, a partially-filled plan smuggled out, a plan whose
// own formatting it rejects — is a bug.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "vbr/common/error.hpp"
#include "vbr/engine/engine.hpp"
#include "vbr/engine/plan_text.hpp"
#include "vbr/model/fgn_generator.hpp"
#include "vbr/run/checkpoint.hpp"

namespace {

void check_invariants(const vbr::engine::GenerationPlan& plan) {
  if (plan.num_sources < 1) std::abort();
  if (!(plan.params.hurst > 0.0 && plan.params.hurst < 1.0)) std::abort();
  // A successfully parsed generator name must resolve (parse validates it).
  if (!plan.generator.empty() &&
      plan.generator != vbr::model::generator_backend_name(plan.resolved_backend())) {
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    const vbr::engine::GenerationPlan plan = vbr::engine::parse_plan_text(text);
    check_invariants(plan);

    // Round trip through the canonical form: must re-parse (a reject here
    // means format emits text parse refuses) and preserve the fingerprint.
    const vbr::engine::GenerationPlan again =
        vbr::engine::parse_plan_text(vbr::engine::format_plan_text(plan));
    if (vbr::run::plan_fingerprint(plan, 1.0, "fuzz") !=
        vbr::run::plan_fingerprint(again, 1.0, "fuzz")) {
      std::abort();
    }
  } catch (const vbr::InvalidArgument&) {
    // Malformed plan text: the documented rejection path.
  }
  return 0;
}
