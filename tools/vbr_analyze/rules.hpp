// The vbr_analyze rule catalog. Each rule encodes a repo invariant that a
// generic linter cannot check; see DESIGN.md §11 for the narrative version.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "source.hpp"

namespace vbr::analyze {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view id;      ///< e.g. "vbr-fork-safety"
  std::string_view legacy;  ///< lint_domain heritage ("A1", "R3", ...)
  std::string_view summary;
};

/// The full catalog, for --list-rules and suppression validation.
const std::vector<RuleInfo>& rule_catalog();

/// True if `id` names a rule in the catalog (including "vbr-suppression").
bool is_known_rule(std::string_view id);

/// Run every rule over the file set. Findings are appended unsuppressed;
/// the caller applies NOLINT markers and the baseline afterwards.
void run_rules(const std::vector<SourceFile>& files,
               std::vector<Finding>& findings);

}  // namespace vbr::analyze
