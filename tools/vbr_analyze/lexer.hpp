// Lexer for vbr_analyze: turns C++ source text into a token stream with
// positions, with comments and string/char/raw-string literals stripped out
// of the rule-visible stream. Preprocessor logical lines become single
// tokens so rules never mistake macro bodies for code, and suppression
// comments (// NOLINT(vbr-rule): why) are collected during the same pass.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace vbr::analyze {

enum class TokKind {
  kIdent,    ///< identifiers and keywords
  kNumber,   ///< numeric literals (pp-numbers)
  kString,   ///< string literal, including raw strings; text excludes quotes
  kChar,     ///< character literal
  kPunct,    ///< operators/punctuation, longest-match for the ones rules use
  kPreproc,  ///< one whole logical preprocessor line (continuations joined)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string_view text;  ///< view into the owning SourceFile's buffer
  std::size_t line = 0;   ///< 1-based line of the token's first character
};

/// How a suppression comment scopes the lines it covers.
enum class SuppressKind {
  kLine,      ///< NOLINT: the line the comment sits on
  kNextLine,  ///< NOLINTNEXTLINE: the following line
  kBegin,     ///< NOLINTBEGIN: start of a region
  kEnd,       ///< NOLINTEND: end of a region
};

struct Suppression {
  SuppressKind kind = SuppressKind::kLine;
  std::size_t line = 0;                ///< line the marker appears on
  std::vector<std::string> rules;      ///< rule ids named in the parens
  std::string justification;           ///< text after the colon (may be empty)
  bool has_rule_list = false;          ///< false for a bare NOLINT
  mutable bool used = false;           ///< set when a finding matches it
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

/// Lex `text` (which must outlive the result; tokens hold views into it).
LexResult lex(std::string_view text);

}  // namespace vbr::analyze
