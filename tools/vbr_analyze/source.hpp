// SourceFile: one lexed file plus the structural indexes the rules share —
// bracket matching, a brace-scope classification (namespace / class /
// function / loop / plain block), and a namespace-scope function-definition
// table. All offsets are token indexes into `tokens`.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace vbr::analyze {

enum class ScopeKind {
  kNamespace,
  kClass,      ///< class/struct/union/enum body
  kFunction,   ///< function or lambda body
  kLoop,       ///< for/while/do body
  kBlock,      ///< any other braced region (if/else/try/catch/bare)
  kInit,       ///< braced initializer (= {...}, f({...}), return {...})
};

struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  std::size_t open = 0;    ///< token index of `{`
  std::size_t close = 0;   ///< token index of matching `}` (or last token)
  std::size_t parent = kNoScope;  ///< index into scopes, or kNoScope
  bool anonymous_namespace = false;

  static constexpr std::size_t kNoScope = static_cast<std::size_t>(-1);
};

/// A namespace-scope function definition (free function or out-of-line
/// member). `name` is the unqualified name; params/body are token ranges.
struct FunctionDef {
  std::string_view name;
  std::size_t name_tok = 0;
  std::size_t params_open = 0;   ///< `(`
  std::size_t params_close = 0;  ///< matching `)`
  std::size_t body_open = 0;     ///< `{`
  std::size_t body_close = 0;    ///< matching `}`
  bool is_noexcept = false;
  bool is_static = false;
  bool in_anonymous_namespace = false;
};

class SourceFile {
 public:
  /// Load and index a file. Returns std::nullopt when unreadable.
  static std::optional<SourceFile> load(const std::string& fs_path,
                                        std::string rel_path);

  const std::string& rel_path() const { return rel_path_; }
  const std::vector<Token>& tokens() const { return lex_.tokens; }
  const std::vector<Suppression>& suppressions() const {
    return lex_.suppressions;
  }

  /// Matching bracket for tokens()[i] when it is one of ()[]{}; npos if
  /// unbalanced.
  std::size_t match(std::size_t i) const { return match_[i]; }

  /// Innermost scope containing token i (Scope::kNoScope at file scope).
  std::size_t scope_of(std::size_t i) const { return scope_of_[i]; }
  const std::vector<Scope>& scopes() const { return scopes_; }

  /// True when token i sits (transitively) inside a loop body.
  bool in_loop(std::size_t i) const;
  /// True when token i sits inside an anonymous namespace.
  bool in_anonymous_namespace(std::size_t i) const;

  const std::vector<FunctionDef>& functions() const { return functions_; }

  /// The function definition whose body contains token i, if any.
  const FunctionDef* enclosing_function(std::size_t i) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  void index();

  std::string rel_path_;
  std::string text_;
  LexResult lex_;
  std::vector<std::size_t> match_;
  std::vector<std::size_t> scope_of_;
  std::vector<Scope> scopes_;
  std::vector<FunctionDef> functions_;
};

/// True if `tok` is an identifier with exactly this text.
bool is_ident(const Token& tok, std::string_view text);

/// True if `tok` is a punctuator with exactly this text.
bool is_punct(const Token& tok, std::string_view text);

}  // namespace vbr::analyze
