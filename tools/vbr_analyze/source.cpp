#include "source.hpp"

#include <array>
#include <fstream>
#include <sstream>

namespace vbr::analyze {

bool is_ident(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kIdent && tok.text == text;
}

bool is_punct(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

namespace {

bool is_control_keyword(std::string_view s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "do" || s == "else" || s == "try" || s == "catch";
}

}  // namespace

std::optional<SourceFile> SourceFile::load(const std::string& fs_path,
                                           std::string rel_path) {
  std::ifstream in(fs_path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  SourceFile file;
  file.rel_path_ = std::move(rel_path);
  file.text_ = buffer.str();
  file.lex_ = lex(file.text_);
  file.index();
  return file;
}

void SourceFile::index() {
  const std::vector<Token>& toks = lex_.tokens;
  const std::size_t n = toks.size();
  match_.assign(n, npos);
  scope_of_.assign(n, Scope::kNoScope);

  // --- bracket matching -------------------------------------------------
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < n; ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    const std::string_view t = toks[i].text;
    if (t == "(" || t == "[" || t == "{") {
      stack.push_back(i);
    } else if (t == ")" || t == "]" || t == "}") {
      static constexpr std::array<std::string_view, 3> kOpen = {"(", "[", "{"};
      static constexpr std::array<std::string_view, 3> kClose = {")", "]", "}"};
      std::size_t want = npos;
      for (std::size_t k = 0; k < 3; ++k) {
        if (t == kClose[k]) want = k;
      }
      // Pop until the matching opener kind (tolerates unbalanced input).
      while (!stack.empty() && toks[stack.back()].text != kOpen[want]) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        match_[stack.back()] = i;
        match_[i] = stack.back();
        stack.pop_back();
      }
    }
  }

  // --- scope classification --------------------------------------------
  std::vector<std::size_t> open_scopes;
  for (std::size_t i = 0; i < n; ++i) {
    if (!open_scopes.empty()) scope_of_[i] = open_scopes.back();
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "}") {
      if (!open_scopes.empty() &&
          scopes_[open_scopes.back()].close == npos) {
        scopes_[open_scopes.back()].close = i;
      }
      if (!open_scopes.empty()) open_scopes.pop_back();
      continue;
    }
    if (toks[i].text != "{") continue;

    Scope scope;
    scope.open = i;
    scope.close = match_[i];
    scope.parent =
        open_scopes.empty() ? Scope::kNoScope : open_scopes.back();

    // Classify by what precedes the `{`. Walk back over trivia the grammar
    // allows between a header and its body.
    std::size_t p = i;
    const auto prev = [&]() -> const Token* {
      return p == 0 ? nullptr : &toks[--p];
    };
    const Token* b = prev();
    scope.kind = ScopeKind::kInit;  // default: initializer-ish
    if (b == nullptr) {
      scope.kind = ScopeKind::kBlock;
    } else if (b->kind == TokKind::kIdent && b->text == "namespace") {
      scope.kind = ScopeKind::kNamespace;
      scope.anonymous_namespace = true;
    } else if (b->kind == TokKind::kIdent && b->text == "do") {
      scope.kind = ScopeKind::kLoop;
    } else if (b->kind == TokKind::kIdent &&
               (b->text == "else" || b->text == "try")) {
      scope.kind = ScopeKind::kBlock;
    } else if (b->kind == TokKind::kIdent || b->kind == TokKind::kPunct) {
      // Skip over: identifier chains (namespace names, base-class lists,
      // trailing return types, const/noexcept/override) to find the shape.
      std::size_t q = p;  // index of b
      // Case: `) {` possibly with qualifiers between — function, lambda,
      // or control statement body.
      std::size_t steps = 0;
      while (q != npos && steps < 24) {
        const Token& t = toks[q];
        if (is_punct(t, ")")) {
          const std::size_t open_paren = match_[q];
          if (open_paren == npos) break;
          // What precedes the `(`?
          std::size_t h = open_paren;
          while (h > 0) {
            --h;
            break;
          }
          const Token& head = toks[h];
          if (head.kind == TokKind::kIdent && is_control_keyword(head.text)) {
            scope.kind = (head.text == "for" || head.text == "while")
                             ? ScopeKind::kLoop
                             : ScopeKind::kBlock;
          } else if (is_punct(head, "]")) {
            scope.kind = ScopeKind::kFunction;  // lambda: ](params){
          } else if (head.kind == TokKind::kIdent ||
                     is_punct(head, ">") || is_punct(head, "::")) {
            scope.kind = ScopeKind::kFunction;
          } else {
            scope.kind = ScopeKind::kInit;
          }
          break;
        }
        if (is_punct(t, "]")) {
          // `[...] {` — capture list with no parameter list.
          scope.kind = ScopeKind::kFunction;
          break;
        }
        if (t.kind == TokKind::kIdent &&
            (t.text == "const" || t.text == "noexcept" ||
             t.text == "override" || t.text == "final" ||
             t.text == "mutable" || t.text == "->" )) {
          if (q == 0) break;
          --q;
          ++steps;
          continue;
        }
        if (is_punct(t, "->") || is_punct(t, "::") || is_punct(t, ">") ||
            is_punct(t, "<") || is_punct(t, ",") || t.kind == TokKind::kIdent ||
            t.kind == TokKind::kNumber) {
          // Could be: class head (`struct X : Y {`), namespace name,
          // trailing return type, enum base. Scan back for the introducing
          // keyword on this declaration.
          std::size_t r = q;
          ScopeKind kind = ScopeKind::kInit;
          std::size_t guard = 0;
          while (r != npos && guard < 64) {
            const Token& u = toks[r];
            if (u.kind == TokKind::kIdent) {
              if (u.text == "class" || u.text == "struct" ||
                  u.text == "union" || u.text == "enum") {
                kind = ScopeKind::kClass;
                break;
              }
              if (u.text == "namespace") {
                kind = ScopeKind::kNamespace;
                break;
              }
            }
            if (u.kind == TokKind::kPunct &&
                (u.text == ";" || u.text == "{" || u.text == "}" ||
                 u.text == "=" || u.text == "(" || u.text == "return")) {
              break;
            }
            if (is_ident(u, "return")) break;
            if (r == 0) break;
            --r;
            ++guard;
          }
          scope.kind = kind == ScopeKind::kInit &&
                               (is_punct(t, ")") || is_punct(t, "]"))
                           ? ScopeKind::kFunction
                           : kind;
          break;
        }
        break;
      }
    }
    open_scopes.push_back(scopes_.size());
    scopes_.push_back(scope);
    scope_of_[i] = scope.parent;  // the `{` itself belongs to the parent
  }

  // --- namespace-scope function definitions ----------------------------
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (toks[i].kind != TokKind::kIdent || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    if (is_control_keyword(toks[i].text)) continue;
    const std::size_t params_close = match_[i + 1];
    if (params_close == npos) continue;
    // Must be at namespace/file scope (free function or out-of-line member).
    const std::size_t sc = scope_of_[i];
    if (sc != Scope::kNoScope && scopes_[sc].kind != ScopeKind::kNamespace) {
      continue;
    }
    // After the `)`: optional qualifiers/init-list, then `{`.
    std::size_t j = params_close + 1;
    bool is_noexcept = false;
    bool saw_init_list = false;
    while (j < n) {
      const Token& t = toks[j];
      if (t.kind == TokKind::kIdent &&
          (t.text == "const" || t.text == "override" || t.text == "final" ||
           t.text == "mutable")) {
        ++j;
        continue;
      }
      if (is_ident(t, "noexcept")) {
        is_noexcept = true;
        ++j;
        if (j < n && is_punct(toks[j], "(")) {
          if (match_[j] == npos) break;
          j = match_[j] + 1;
        }
        continue;
      }
      if (is_punct(t, "->")) {  // trailing return type: skip to `{` or `;`
        ++j;
        while (j < n && !is_punct(toks[j], "{") && !is_punct(toks[j], ";")) {
          if (is_punct(toks[j], "(") || is_punct(toks[j], "[")) {
            if (match_[j] == npos) break;
            j = match_[j];
          }
          ++j;
        }
        continue;
      }
      if (is_punct(t, ":")) {  // constructor init list
        saw_init_list = true;
        ++j;
        while (j < n && !is_punct(toks[j], "{")) {
          if (is_punct(toks[j], "(") || is_punct(toks[j], "[")) {
            if (match_[j] == npos) break;
            j = match_[j];
          }
          ++j;
        }
        continue;
      }
      break;
    }
    (void)saw_init_list;
    if (j >= n || !is_punct(toks[j], "{")) continue;
    const std::size_t body_close = match_[j];
    if (body_close == npos) continue;

    FunctionDef def;
    def.name = toks[i].text;
    def.name_tok = i;
    def.params_open = i + 1;
    def.params_close = params_close;
    def.body_open = j;
    def.body_close = body_close;
    def.is_noexcept = is_noexcept;
    def.in_anonymous_namespace = in_anonymous_namespace(i);
    // `static` anywhere in the declaration specifiers before the name.
    std::size_t r = i;
    while (r > 0) {
      --r;
      const Token& u = toks[r];
      if (u.kind == TokKind::kPunct &&
          (u.text == ";" || u.text == "}" || u.text == "{")) {
        break;
      }
      if (is_ident(u, "static")) {
        def.is_static = true;
        break;
      }
    }
    functions_.push_back(def);
  }
}

bool SourceFile::in_loop(std::size_t i) const {
  std::size_t sc = scope_of_[i];
  while (sc != Scope::kNoScope) {
    const Scope& scope = scopes_[sc];
    if (scope.kind == ScopeKind::kLoop) return true;
    // Don't look past a function boundary: a lambda inside a loop is not
    // itself loop-repeated code from the rule's point of view.
    if (scope.kind == ScopeKind::kFunction) return false;
    sc = scope.parent;
  }
  return false;
}

bool SourceFile::in_anonymous_namespace(std::size_t i) const {
  std::size_t sc = scope_of_[i];
  while (sc != Scope::kNoScope) {
    const Scope& scope = scopes_[sc];
    if (scope.kind == ScopeKind::kNamespace && scope.anonymous_namespace) {
      return true;
    }
    sc = scope.parent;
  }
  return false;
}

const FunctionDef* SourceFile::enclosing_function(std::size_t i) const {
  const FunctionDef* best = nullptr;
  for (const FunctionDef& def : functions_) {
    if (def.body_open < i && i < def.body_close) {
      if (best == nullptr || def.body_open > best->body_open) best = &def;
    }
  }
  return best;
}

}  // namespace vbr::analyze
