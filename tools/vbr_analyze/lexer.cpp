#include "lexer.hpp"

#include <algorithm>
#include <cctype>

namespace vbr::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trimmed(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parse one NOLINT-family marker out of a comment body, if present.
/// Recognized forms (rule list and justification both optional at the
/// grammar level; the analyzer enforces the policy later):
///   NOLINT(vbr-rule, vbr-other): justification
///   NOLINTNEXTLINE(vbr-rule): justification
///   NOLINTBEGIN(vbr-rule): justification ... NOLINTEND(vbr-rule)
/// A marker must START the comment body (`foo(); // NOLINT(...)`), the
/// clang-tidy placement convention; comments merely *mentioning* NOLINT
/// (like this one) are prose, not suppressions.
void collect_nolint(std::string_view comment, std::size_t line,
                    std::vector<Suppression>& out) {
  const std::string_view lead = trimmed(comment);
  if (!lead.starts_with("NOLINT")) return;
  std::string_view rest = lead.substr(6);

  Suppression s;
  s.line = line;
  if (rest.starts_with("NEXTLINE")) {
    s.kind = SuppressKind::kNextLine;
    rest.remove_prefix(8);
  } else if (rest.starts_with("BEGIN")) {
    s.kind = SuppressKind::kBegin;
    rest.remove_prefix(5);
  } else if (rest.starts_with("END")) {
    s.kind = SuppressKind::kEnd;
    rest.remove_prefix(3);
  }

  if (rest.starts_with("(")) {
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) return;  // malformed; not a marker
    s.has_rule_list = true;
    std::string_view list = rest.substr(1, close - 1);
    while (!list.empty()) {
      const std::size_t comma = list.find(',');
      const std::string_view item =
          trimmed(comma == std::string_view::npos ? list : list.substr(0, comma));
      if (!item.empty()) s.rules.emplace_back(item);
      if (comma == std::string_view::npos) break;
      list.remove_prefix(comma + 1);
    }
    rest.remove_prefix(close + 1);
  }

  rest = trimmed(rest);
  if (rest.starts_with(":")) {
    s.justification = std::string(trimmed(rest.substr(1)));
  }
  out.push_back(std::move(s));
}

/// Multi-character punctuators the rules care about, longest first.
constexpr std::string_view kPuncts[] = {
    "...", "->*", "<<=", ">>=", "<=>", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=",
};

}  // namespace

LexResult lex(std::string_view text) {
  LexResult result;
  std::size_t i = 0;
  std::size_t line = 1;
  const std::size_t n = text.size();

  const auto count_lines = [&](std::size_t from, std::size_t to) {
    line += static_cast<std::size_t>(
        std::count(text.begin() + static_cast<std::ptrdiff_t>(from),
                   text.begin() + static_cast<std::ptrdiff_t>(to), '\n'));
  };

  // True until the first token of a line is consumed; used to spot `#`.
  bool at_line_start = true;

  while (i < n) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';

    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Line comment (may carry a NOLINT marker).
    if (c == '/' && next == '/') {
      std::size_t j = text.find('\n', i);
      if (j == std::string_view::npos) j = n;
      collect_nolint(text.substr(i + 2, j - i - 2), line, result.suppressions);
      i = j;
      continue;
    }
    // Block comment: the marker, if any, applies to the line it ends on.
    if (c == '/' && next == '*') {
      std::size_t j = text.find("*/", i + 2);
      j = j == std::string_view::npos ? n : j + 2;
      const std::size_t start_line = line;
      count_lines(i, j);
      (void)start_line;
      collect_nolint(text.substr(i + 2, j - i - 2), line, result.suppressions);
      i = j;
      continue;
    }

    // Preprocessor logical line, backslash continuations joined.
    if (c == '#' && at_line_start) {
      std::size_t j = i;
      for (;;) {
        std::size_t eol = text.find('\n', j);
        if (eol == std::string_view::npos) {
          j = n;
          break;
        }
        std::size_t back = eol;
        while (back > j && (text[back - 1] == '\r')) --back;
        if (back > j && text[back - 1] == '\\') {
          j = eol + 1;
          continue;
        }
        j = eol;
        break;
      }
      result.tokens.push_back({TokKind::kPreproc, text.substr(i, j - i), line});
      count_lines(i, j);
      i = j;
      at_line_start = true;
      continue;
    }
    at_line_start = false;

    // Raw string literal: R"delim( ... )delim" — never rule-visible inside.
    if (c == 'R' && next == '"') {
      const std::size_t open = text.find('(', i + 2);
      const std::string_view delim =
          open == std::string_view::npos ? std::string_view{}
                                         : text.substr(i + 2, open - i - 2);
      if (open != std::string_view::npos && delim.size() <= 16) {
        std::string closer = ")" + std::string(delim) + "\"";
        std::size_t end = text.find(closer, open + 1);
        end = end == std::string_view::npos ? n : end + closer.size();
        result.tokens.push_back(
            {TokKind::kString, text.substr(i + 2 + delim.size() + 1,
                                           end - i - closer.size() -
                                               (2 + delim.size() + 1)),
             line});
        count_lines(i, end);
        i = end;
        continue;
      }
    }

    // Ordinary string/char literal with escape handling.
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n) {
        if (text[j] == '\\') {
          j += 2;
          continue;
        }
        if (text[j] == c) {
          ++j;
          break;
        }
        if (text[j] == '\n') break;  // unterminated: stop at line end
        ++j;
      }
      result.tokens.push_back(
          {c == '"' ? TokKind::kString : TokKind::kChar,
           text.substr(i + 1, j > i + 1 ? j - i - 2 : 0), line});
      count_lines(i, std::min(j, n));
      i = std::min(j, n);
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(text[j])) ++j;
      // Identifier immediately followed by a quote is an encoding prefix
      // (u8"...", L'...'): fold into the literal by looping again.
      if (j < n && (text[j] == '"' || text[j] == '\'') &&
          (text.substr(i, j - i) == "u8" || text.substr(i, j - i) == "u" ||
           text.substr(i, j - i) == "U" || text.substr(i, j - i) == "L")) {
        i = j;
        continue;
      }
      result.tokens.push_back({TokKind::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(next)) != 0)) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      result.tokens.push_back({TokKind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Punctuation: longest match against the multi-char table.
    std::string_view matched;
    for (const std::string_view p : kPuncts) {
      if (text.substr(i).starts_with(p)) {
        matched = p;
        break;
      }
    }
    if (matched.empty()) matched = text.substr(i, 1);
    result.tokens.push_back({TokKind::kPunct, matched, line});
    i += matched.size();
  }

  return result;
}

}  // namespace vbr::analyze
