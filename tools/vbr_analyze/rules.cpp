#include "rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

namespace vbr::analyze {

namespace {

// ---------------------------------------------------------------------------
// Path predicates
// ---------------------------------------------------------------------------

bool under(const std::string& path, std::string_view dir) {
  return path.size() > dir.size() && path.compare(0, dir.size(), dir) == 0 &&
         path[dir.size()] == '/';
}

bool is_header(const std::string& path) {
  return path.ends_with(".hpp") || path.ends_with(".h");
}

/// src/, bench/, examples/, fuzz/, tools/ — everywhere "library-grade" code
/// lives. tests/ is exempt from most token rules (fixtures may use local
/// statics etc.), matching the old lint_domain scoping.
bool in_code_dirs(const std::string& p) {
  return under(p, "src") || under(p, "bench") || under(p, "examples") ||
         under(p, "fuzz") || under(p, "tools");
}

bool in_artifact_dirs(const std::string& p) {
  return under(p, "bench") || under(p, "examples") ||
         under(p, "src/vbr/run") || under(p, "src/vbr/common");
}

// ---------------------------------------------------------------------------
// Small token helpers
// ---------------------------------------------------------------------------

using Toks = std::vector<Token>;

/// Is tokens[i] an identifier that is called (next non-`::` token is `(`)?
bool is_call(const Toks& t, std::size_t i) {
  return i + 1 < t.size() && t[i].kind == TokKind::kIdent &&
         is_punct(t[i + 1], "(");
}

/// Walk back over a `std::`/`vbr::`-style qualifier chain; returns the index
/// of the first qualifier token (or i itself when unqualified).
std::size_t qualifier_start(const Toks& t, std::size_t i) {
  while (i >= 2 && is_punct(t[i - 1], "::") && t[i - 2].kind == TokKind::kIdent) {
    i -= 2;
  }
  if (i >= 1 && is_punct(t[i - 1], "::")) --i;  // leading `::`
  return i;
}

void report(std::vector<Finding>& out, const SourceFile& f, std::size_t line,
            std::string_view rule, std::string message) {
  out.push_back({f.rel_path(), line, std::string(rule), std::move(message)});
}

// ---------------------------------------------------------------------------
// R1 rng-purity · R2 lgamma-reentrancy · R4 naked-new (token scans)
// ---------------------------------------------------------------------------

void rule_token_scans(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& p = f.rel_path();
  const Toks& t = f.tokens();
  const bool rng_allowed = p == "src/vbr/common/rng.cpp";
  const bool lgamma_allowed = p == "src/vbr/common/special_functions.cpp";
  const bool scan_r1r2r4 = in_code_dirs(p);
  if (!scan_r1r2r4) return;

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string_view s = t[i].text;

    if (!rng_allowed) {
      const bool std_rand = s == "rand" && i >= 2 && is_punct(t[i - 1], "::") &&
                            is_ident(t[i - 2], "std");
      if (std_rand || (s == "srand" && is_call(t, i)) || s == "random_device" ||
          s == "mt19937" || s == "mt19937_64") {
        report(out, f, t[i].line, "vbr-rng-purity",
               "stdlib RNG outside rng.cpp; draw from the seeded vbr::Rng");
      }
    }
    if (!lgamma_allowed &&
        (s == "lgamma" || s == "lgammaf" || s == "lgammal" || s == "lgamma_r") &&
        is_call(t, i)) {
      report(out, f, t[i].line, "vbr-lgamma-reentrancy",
             "bare lgamma writes global signgam; use vbr::lgamma_safe");
    }

    if (s == "new") {
      const bool op = i > 0 && is_ident(t[i - 1], "operator");
      const bool expr = i + 1 < t.size() &&
                        (t[i + 1].kind == TokKind::kIdent ||
                         is_punct(t[i + 1], "(") || is_punct(t[i + 1], "::"));
      if (!op && expr) {
        report(out, f, t[i].line, "vbr-naked-new",
               "naked new; use containers or smart pointers");
      }
    }
    if (s == "delete") {
      const bool defaulted = i > 0 && is_punct(t[i - 1], "=");
      const bool op = i > 0 && is_ident(t[i - 1], "operator");
      const bool expr = i + 1 < t.size() &&
                        (t[i + 1].kind == TokKind::kIdent ||
                         is_punct(t[i + 1], "[") || is_punct(t[i + 1], "("));
      if (!defaulted && !op && expr) {
        report(out, f, t[i].line, "vbr-naked-new",
               "naked delete; use containers or smart pointers");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R3 no-mutable-static
// ---------------------------------------------------------------------------

void rule_mutable_static(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& p = f.rel_path();
  if (!under(p, "src")) return;
  // Reviewed caches: mutex-guarded, immutable-after-build shared tables
  // (twiddle factors, Durbin-Levinson coefficient tables, marginal quantile
  // maps). The service entries hold the per-(H, variance, horizon) predictor
  // tables and per-params marginal maps shared across a million streams.
  static constexpr std::array<std::string_view, 5> kAllow = {
      "src/vbr/model/davies_harte.cpp", "src/vbr/model/paxson_fgn.cpp",
      "src/vbr/common/fft_fast.cpp", "src/vbr/service/streaming_hosking.cpp",
      "src/vbr/service/streaming_vbr.cpp"};
  if (std::find(kAllow.begin(), kAllow.end(), p) != kAllow.end()) return;

  const Toks& t = f.tokens();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i], "static")) continue;
    // Scan the declaration after `static` up to the first structural token.
    bool immutable = false;
    bool function_like = false;
    std::size_t j = i + 1;
    while (j < t.size()) {
      const Token& u = t[j];
      if (u.kind == TokKind::kIdent &&
          (u.text == "const" || u.text == "constexpr" ||
           u.text == "constinit" || u.text == "thread_local" ||
           u.text == "_Thread_local")) {
        immutable = true;
        break;
      }
      if (is_punct(u, ";") || is_punct(u, "=") || is_punct(u, "{")) break;
      if (is_punct(u, "(")) {
        // `name(` — either a function declaration/definition or a variable
        // with constructor arguments. A body or a specifier after the `)`
        // means function; inside a class body a bare `;` also reads as a
        // member-function declaration (the old lint's header rule).
        const std::size_t close = f.match(j);
        if (close == SourceFile::npos) break;
        const std::size_t after = close + 1;
        if (after < t.size() &&
            (is_punct(t[after], "{") || is_ident(t[after], "noexcept") ||
             is_ident(t[after], "const") || is_punct(t[after], "->"))) {
          function_like = true;
        } else {
          const std::size_t sc = f.scope_of(i);
          if (sc != Scope::kNoScope &&
              f.scopes()[sc].kind == ScopeKind::kClass &&
              after < t.size() && is_punct(t[after], ";")) {
            function_like = true;
          }
        }
        break;
      }
      ++j;
    }
    if (immutable || function_like) continue;
    report(out, f, t[i].line, "vbr-mutable-static",
           "mutable static state (the signgam bug class); pass state "
           "explicitly or allowlist a reviewed cache");
  }
}

// ---------------------------------------------------------------------------
// R5 pragma-once
// ---------------------------------------------------------------------------

void rule_pragma_once(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& p = f.rel_path();
  if (!is_header(p) || !(under(p, "src") || under(p, "tools"))) return;
  const Toks& t = f.tokens();
  if (t.empty() || t[0].kind != TokKind::kPreproc ||
      t[0].text.find("pragma") == std::string_view::npos ||
      t[0].text.find("once") == std::string_view::npos) {
    report(out, f, 1, "vbr-pragma-once", "header must open with #pragma once");
  }
}

// ---------------------------------------------------------------------------
// R6 atomic-artifacts
// ---------------------------------------------------------------------------

void rule_atomic_artifacts(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& p = f.rel_path();
  if (!in_artifact_dirs(p) || p == "src/vbr/common/atomic_file.cpp") return;
  for (std::size_t i = 0; i < f.tokens().size(); ++i) {
    if (is_ident(f.tokens()[i], "ofstream")) {
      report(out, f, f.tokens()[i].line, "vbr-atomic-artifacts",
             "direct ofstream artifact write; use vbr::write_file_atomic "
             "(temp file + rename) so crashes can't leave torn artifacts");
    }
  }
}

// ---------------------------------------------------------------------------
// A1 fork-safety
// ---------------------------------------------------------------------------

/// Calls allowed between fork() returning 0 and the terminal handoff:
/// the async-signal-safe surface this repo actually needs.
bool async_signal_safe(std::string_view name) {
  static const std::set<std::string_view> kSafe = {
      "_exit",    "_Exit",     "abort",   "alarm",     "chdir",    "close",
      "dup",      "dup2",      "execl",   "execle",    "execlp",   "execv",
      "execve",   "execvp",    "fcntl",   "fork",      "getpid",   "getppid",
      "kill",     "memcpy",    "memset",  "nanosleep", "open",     "pause",
      "pipe",     "prctl",     "raise",   "read",      "setpgid",  "setrlimit",
      "getrlimit","setsid",    "sigaction", "signal",  "sigprocmask",
      "strlen",   "umask",     "usleep",  "waitpid",   "write",
  };
  return kSafe.contains(name);
}

bool terminal_call_name(std::string_view name) {
  return name == "_exit" || name == "_Exit" || name == "abort" ||
         name.starts_with("exec");
}

struct ForkScan {
  std::set<std::string> handoffs;  ///< functions invoked as the child handoff
};

void rule_fork_safety_blocks(const SourceFile& f, ForkScan& scan,
                             std::vector<Finding>& out) {
  const std::string& p = f.rel_path();
  const Toks& t = f.tokens();

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i], "fork") || !is_call(t, i)) continue;
    if (i > 0 && is_punct(t[i - 1], ".")) continue;  // member named fork

    if (!under(p, "src/vbr/sweep") && !under(p, "tools")) {
      report(out, f, t[i].line, "vbr-fork-safety",
             "fork() outside src/vbr/sweep/; process isolation lives behind "
             "the sweep supervisor");
      continue;
    }

    // Find the variable the pid lands in: `pid = fork()` / `pid_t pid = ...`.
    std::string_view pid_name;
    std::size_t q = qualifier_start(t, i);
    if (q >= 2 && is_punct(t[q - 1], "=") && t[q - 2].kind == TokKind::kIdent) {
      pid_name = t[q - 2].text;
    }
    // Locate the child branch: `if (pid == 0)` (or `0 == pid`) after the
    // fork; also handle the inline form `if (fork() == 0)`.
    std::size_t child_open = SourceFile::npos;
    std::size_t search_end = std::min(t.size(), i + 4096);
    if (pid_name.empty()) {
      const std::size_t close = f.match(i + 1);
      if (close != SourceFile::npos && close + 3 < t.size() &&
          is_punct(t[close + 1], "==") && t[close + 2].text == "0") {
        std::size_t b = close + 3;
        while (b < t.size() && !is_punct(t[b], ")")) ++b;
        if (b + 1 < t.size() && is_punct(t[b + 1], "{")) child_open = b + 1;
      }
    } else {
      for (std::size_t j = i; j + 5 < search_end; ++j) {
        if (!is_ident(t[j], "if") || !is_punct(t[j + 1], "(")) continue;
        const std::size_t close = f.match(j + 1);
        if (close == SourceFile::npos) continue;
        bool child_cond = false;
        for (std::size_t k = j + 2; k + 2 < close; ++k) {
          if ((t[k].text == pid_name && is_punct(t[k + 1], "==") &&
               t[k + 2].text == "0") ||
              (t[k].text == "0" && is_punct(t[k + 1], "==") &&
               t[k + 2].text == pid_name)) {
            child_cond = true;
            break;
          }
        }
        if (!child_cond) continue;
        if (close + 1 < t.size() && is_punct(t[close + 1], "{")) {
          child_open = close + 1;
        } else {
          report(out, f, t[j].line, "vbr-fork-safety",
                 "fork-child branch must be a braced block so the analyzer "
                 "can audit it");
        }
        break;
      }
    }
    if (child_open == SourceFile::npos) continue;
    const std::size_t child_close = f.match(child_open);
    if (child_close == SourceFile::npos) continue;

    // Audit the child block: async-signal-safe calls only, plus one
    // terminal handoff call as the final statement.
    bool terminated = false;
    for (std::size_t j = child_open + 1; j < child_close; ++j) {
      const Token& u = t[j];
      if (u.kind == TokKind::kIdent) {
        if (u.text == "throw") {
          report(out, f, u.line, "vbr-fork-safety",
                 "throw between fork() and _exit/exec; nothing may unwind in "
                 "the child");
          continue;
        }
        if (u.text == "new") {
          report(out, f, u.line, "vbr-fork-safety",
                 "allocation between fork() and _exit/exec is not "
                 "async-signal-safe");
          continue;
        }
        static const std::set<std::string_view> kDeny = {
            "cout",       "cerr",       "clog",      "printf",  "fprintf",
            "puts",       "fputs",      "fflush",    "malloc",  "calloc",
            "realloc",    "free",       "exit",      "string",  "vector",
            "ostringstream", "istringstream", "stringstream",
            "mutex",      "lock_guard", "unique_lock", "scoped_lock",
            "sleep_for",  "async",      "thread",
        };
        if (kDeny.contains(u.text)) {
          report(out, f, u.line, "vbr-fork-safety",
                 "'" + std::string(u.text) +
                     "' between fork() and _exit/exec is not "
                     "async-signal-safe");
          continue;
        }
        if (is_call(t, j)) {
          if (async_signal_safe(u.text)) {
            if (terminal_call_name(u.text)) terminated = true;
            continue;
          }
          if (u.text.starts_with("VBR_")) continue;  // contract macros: deny
          // Non-allowlisted call: allowed only as the terminal handoff —
          // `handoff(args);` immediately before the closing brace.
          const std::size_t close = f.match(j + 1);
          const bool last =
              close != SourceFile::npos && close + 2 <= child_close &&
              is_punct(t[close + 1], ";") && close + 2 == child_close;
          if (last) {
            scan.handoffs.insert(std::string(u.text));
            terminated = true;
            j = close;
            continue;
          }
          report(out, f, u.line, "vbr-fork-safety",
                 "call to '" + std::string(u.text) +
                     "' in the fork child is not on the async-signal-safe "
                     "allowlist and is not the terminal handoff");
        }
      }
    }
    if (!terminated) {
      report(out, f, t[child_open].line, "vbr-fork-safety",
             "fork child can fall through into parent code; end the block "
             "with _exit/exec or a [[noreturn]] handoff call");
    }
  }
}

void rule_fork_safety_handoffs(const std::vector<SourceFile>& files,
                               const ForkScan& scan,
                               std::vector<Finding>& out) {
  if (scan.handoffs.empty()) return;
  for (const SourceFile& f : files) {
    const Toks& t = f.tokens();
    for (const FunctionDef& def : f.functions()) {
      if (!scan.handoffs.contains(std::string(def.name))) continue;
      bool reaches_exit = false;
      for (std::size_t j = def.body_open; j < def.body_close; ++j) {
        const Token& u = t[j];
        if (u.kind != TokKind::kIdent) continue;
        if (terminal_call_name(u.text) && is_call(t, j)) reaches_exit = true;
        const bool member =
            j > 0 && (is_punct(t[j - 1], ".") || is_punct(t[j - 1], "->"));
        if (u.text == "exit" && is_call(t, j) && !member) {
          report(out, f, u.line, "vbr-fork-safety",
                 "fork-child handoff must use _exit, not exit: the child "
                 "shares the parent's stdio buffers and atexit state");
        }
        if (u.text == "fflush" || u.text == "cout") {
          report(out, f, u.line, "vbr-fork-safety",
                 "fork-child handoff must not touch inherited stdio "
                 "buffers ('" + std::string(u.text) + "')");
        }
      }
      if (!reaches_exit) {
        report(out, f, t[def.name_tok].line, "vbr-fork-safety",
               "fork-child handoff '" + std::string(def.name) +
                   "' must terminate with _exit or exec on every path");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lambda geometry shared by A2/A3
// ---------------------------------------------------------------------------

struct LambdaShape {
  std::size_t capture_open = SourceFile::npos;   ///< `[`
  std::size_t capture_close = SourceFile::npos;  ///< `]`
  std::size_t params_open = SourceFile::npos;    ///< `(` or npos
  std::size_t params_close = SourceFile::npos;
  std::size_t body_open = SourceFile::npos;      ///< `{`
  std::size_t body_close = SourceFile::npos;
  bool is_noexcept = false;
  bool valid = false;
};

LambdaShape lambda_at(const SourceFile& f, std::size_t open_bracket) {
  LambdaShape shape;
  const Toks& t = f.tokens();
  if (open_bracket >= t.size() || !is_punct(t[open_bracket], "[")) return shape;
  shape.capture_open = open_bracket;
  shape.capture_close = f.match(open_bracket);
  if (shape.capture_close == SourceFile::npos) return shape;
  std::size_t j = shape.capture_close + 1;
  if (j < t.size() && is_punct(t[j], "(")) {
    shape.params_open = j;
    shape.params_close = f.match(j);
    if (shape.params_close == SourceFile::npos) return shape;
    j = shape.params_close + 1;
  }
  while (j < t.size() && !is_punct(t[j], "{")) {
    if (is_ident(t[j], "noexcept")) shape.is_noexcept = true;
    if (is_punct(t[j], ";") || is_punct(t[j], ")")) return shape;
    if (is_punct(t[j], "(")) {
      const std::size_t c = f.match(j);
      if (c == SourceFile::npos) return shape;
      j = c;
    }
    ++j;
  }
  if (j >= t.size()) return shape;
  shape.body_open = j;
  shape.body_close = f.match(j);
  shape.valid = shape.body_close != SourceFile::npos;
  return shape;
}

/// Resolve a functor argument that is either an inline lambda starting at
/// `arg_start` or an identifier naming `auto name = [...]` earlier in the
/// file. Returns an invalid shape when it is neither.
LambdaShape resolve_functor(const SourceFile& f, std::size_t arg_start,
                            std::string_view* name_out = nullptr) {
  const Toks& t = f.tokens();
  if (arg_start < t.size() && is_punct(t[arg_start], "[")) {
    return lambda_at(f, arg_start);
  }
  if (arg_start < t.size() && t[arg_start].kind == TokKind::kIdent) {
    if (name_out != nullptr) *name_out = t[arg_start].text;
    const std::string_view name = t[arg_start].text;
    // Search backwards for `name = [` (named lambda).
    for (std::size_t j = arg_start; j-- > 0;) {
      if (t[j].kind == TokKind::kIdent && t[j].text == name &&
          j + 2 < t.size() && is_punct(t[j + 1], "=") &&
          is_punct(t[j + 2], "[")) {
        return lambda_at(f, j + 2);
      }
    }
  }
  return {};
}

/// True when the lambda body contains a `catch (...)` handler.
bool has_catch_all(const SourceFile& f, const LambdaShape& shape) {
  const Toks& t = f.tokens();
  for (std::size_t j = shape.body_open; j < shape.body_close; ++j) {
    if (is_ident(t[j], "catch") && j + 2 < t.size() &&
        is_punct(t[j + 1], "(") && is_punct(t[j + 2], "...")) {
      return true;
    }
  }
  return false;
}

/// Split the top-level comma-separated arguments of the call whose `(` is at
/// `open`. Returns the token index of each argument's first token.
std::vector<std::size_t> call_args(const SourceFile& f, std::size_t open) {
  std::vector<std::size_t> starts;
  const Toks& t = f.tokens();
  const std::size_t close = f.match(open);
  if (close == SourceFile::npos) return starts;
  std::size_t j = open + 1;
  if (j >= close) return starts;
  starts.push_back(j);
  while (j < close) {
    if (is_punct(t[j], "(") || is_punct(t[j], "[") || is_punct(t[j], "{")) {
      const std::size_t m = f.match(j);
      if (m == SourceFile::npos || m > close) break;
      j = m + 1;
      continue;
    }
    if (is_punct(t[j], ",")) {
      if (j + 1 < close) starts.push_back(j + 1);
    }
    ++j;
  }
  return starts;
}

// ---------------------------------------------------------------------------
// A2 rng-discipline
// ---------------------------------------------------------------------------

/// Mutable `Rng` declarations (locals, params, members) in token range
/// [begin, end): `Rng name`, `vbr::Rng name`, `Rng& name` — skipping
/// `const Rng` and `Rng` inside template argument lists (span<const Rng>).
std::vector<std::string_view> mutable_rng_names(const SourceFile& f,
                                                std::size_t begin,
                                                std::size_t end) {
  std::vector<std::string_view> names;
  const Toks& t = f.tokens();
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!is_ident(t[i], "Rng")) continue;
    const std::size_t q = qualifier_start(t, i);
    if (q > 0 && is_ident(t[q - 1], "const")) continue;
    if (q > 0 && is_punct(t[q - 1], "<")) continue;  // template argument
    std::size_t j = i + 1;
    while (j < end && (is_punct(t[j], "&") || is_punct(t[j], "*"))) ++j;
    if (j < end && t[j].kind == TokKind::kIdent && j + 1 < t.size()) {
      const Token& after = t[j + 1];
      if (is_punct(after, "=") || is_punct(after, ";") ||
          is_punct(after, ",") || is_punct(after, ")") ||
          is_punct(after, "{") || is_punct(after, "(")) {
        names.push_back(t[j].text);
      }
    }
  }
  return names;
}

/// Parallel boundaries: work handed to them runs on pool threads.
bool is_parallel_boundary(std::string_view name) {
  return name == "parallel_for_index";
}

void rule_rng_discipline(const SourceFile& f, std::vector<Finding>& out) {
  const Toks& t = f.tokens();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !is_parallel_boundary(t[i].text) ||
        !is_call(t, i)) {
      continue;
    }
    const std::vector<std::size_t> args = call_args(f, i + 1);
    if (args.empty()) continue;

    // Mutable Rng objects visible at the call site.
    const FunctionDef* fn = f.enclosing_function(i);
    const std::size_t decl_begin = fn != nullptr ? fn->params_open : 0;
    std::vector<std::string_view> rngs = mutable_rng_names(f, decl_begin, i);

    // `std::ref(rng)` smuggled through bound arguments.
    const std::size_t call_close = f.match(i + 1);
    for (std::size_t j = i + 2; j < call_close; ++j) {
      if (is_ident(t[j], "ref") && is_call(t, j)) {
        const std::size_t rc = f.match(j + 1);
        for (std::size_t k = j + 2; k < rc && k < t.size(); ++k) {
          if (t[k].kind == TokKind::kIdent &&
              std::find(rngs.begin(), rngs.end(), t[k].text) != rngs.end()) {
            report(out, f, t[k].line, "vbr-rng-discipline",
                   "Rng passed by reference across a parallel boundary via "
                   "std::ref; split a per-task stream by value");
          }
        }
      }
    }

    const LambdaShape shape = resolve_functor(f, args.back());
    if (!shape.valid) continue;

    // Capture list checks.
    bool default_ref = false;
    for (std::size_t j = shape.capture_open + 1; j < shape.capture_close; ++j) {
      if (is_punct(t[j], "&")) {
        if (j + 1 < shape.capture_close && t[j + 1].kind == TokKind::kIdent) {
          if (std::find(rngs.begin(), rngs.end(), t[j + 1].text) != rngs.end()) {
            report(out, f, t[j + 1].line, "vbr-rng-discipline",
                   "Rng '" + std::string(t[j + 1].text) +
                       "' captured by reference into a parallel task; give "
                       "each task its own rng.split() stream by value");
          }
          ++j;
        } else {
          default_ref = true;
        }
      }
    }
    if (default_ref) {
      for (std::size_t j = shape.body_open + 1; j < shape.body_close; ++j) {
        if (t[j].kind != TokKind::kIdent) continue;
        if (std::find(rngs.begin(), rngs.end(), t[j].text) == rngs.end()) {
          continue;
        }
        // A fresh shadowing declaration inside the lambda is fine; a bare
        // use of the outer object is the race.
        report(out, f, t[j].line, "vbr-rng-discipline",
               "outer Rng '" + std::string(t[j].text) +
                   "' used inside a [&] parallel task; derive a per-task "
                   "stream with split() and capture it by value");
        break;
      }
    }

    // Lambda parameters: `Rng&` without const crossing the boundary.
    if (shape.params_open != SourceFile::npos) {
      for (std::size_t j = shape.params_open + 1; j < shape.params_close; ++j) {
        if (is_ident(t[j], "Rng") && j + 1 < shape.params_close &&
            is_punct(t[j + 1], "&")) {
          const std::size_t q = qualifier_start(t, j);
          if (!(q > 0 && is_ident(t[q - 1], "const"))) {
            report(out, f, t[j].line, "vbr-rng-discipline",
                   "mutable Rng& parameter on a parallel task; pass a split "
                   "stream by value");
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// A3 thread-boundary
// ---------------------------------------------------------------------------

void rule_thread_boundary(const SourceFile& f, std::vector<Finding>& out) {
  const Toks& t = f.tokens();

  // Names of std::vector<std::thread> variables in this file.
  std::set<std::string_view> thread_vecs;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "vector")) continue;
    const std::size_t lt = i + 1;
    if (!is_punct(t[lt], "<")) continue;
    bool has_thread = false;
    std::size_t j = lt + 1;
    std::size_t depth = 1;
    while (j < t.size() && depth > 0) {
      if (is_punct(t[j], "<")) ++depth;
      if (is_punct(t[j], ">")) --depth;
      if (is_ident(t[j], "thread") || is_ident(t[j], "jthread")) {
        has_thread = true;
      }
      ++j;
    }
    if (has_thread && j < t.size() && t[j].kind == TokKind::kIdent) {
      thread_vecs.insert(t[j].text);
    }
  }

  const auto check_functor = [&](std::size_t arg_start, std::size_t site) {
    std::string_view name;
    const LambdaShape shape = resolve_functor(f, arg_start, &name);
    if (shape.valid) {
      if (shape.is_noexcept || has_catch_all(f, shape)) return;
      report(out, f, t[site].line, "vbr-thread-boundary",
             "thread entry point must be noexcept or wrap its body in the "
             "catch-and-report idiom (an escaped exception calls "
             "std::terminate)");
      return;
    }
    // Maybe a named function defined in this file.
    if (!name.empty()) {
      for (const FunctionDef& def : f.functions()) {
        if (def.name != name) continue;
        bool ok = def.is_noexcept;
        for (std::size_t j = def.body_open; !ok && j < def.body_close; ++j) {
          if (is_ident(t[j], "catch") && j + 2 < t.size() &&
              is_punct(t[j + 1], "(") && is_punct(t[j + 2], "...")) {
            ok = true;
          }
        }
        if (!ok) {
          report(out, f, t[site].line, "vbr-thread-boundary",
                 "thread entry '" + std::string(name) +
                     "' must be noexcept or contain a catch-and-report "
                     "boundary");
        }
        return;
      }
    }
    report(out, f, t[site].line, "vbr-thread-boundary",
           "cannot prove this thread entry has an exception boundary; make "
           "it noexcept or wrap it in catch-and-report");
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    // `std::thread name(functor, ...)` or `std::thread(functor, ...)`.
    if (is_ident(t[i], "thread") && i >= 2 && is_punct(t[i - 1], "::") &&
        is_ident(t[i - 2], "std")) {
      std::size_t j = i + 1;
      if (j < t.size() && t[j].kind == TokKind::kIdent) ++j;  // variable name
      if (j < t.size() && is_punct(t[j], "(")) {
        const std::vector<std::size_t> args = call_args(f, j);
        if (!args.empty()) check_functor(args.front(), i);
      }
      continue;
    }
    // pool.emplace_back(functor) on a vector<thread>.
    if ((is_ident(t[i], "emplace_back") || is_ident(t[i], "push_back")) &&
        i >= 2 && is_punct(t[i - 1], ".") &&
        t[i - 2].kind == TokKind::kIdent &&
        thread_vecs.contains(t[i - 2].text) && is_call(t, i)) {
      std::vector<std::size_t> args = call_args(f, i + 1);
      if (args.empty()) continue;
      std::size_t arg = args.front();
      // push_back(std::thread(f)) — unwrap the temporary.
      if (is_ident(t[arg], "std") && arg + 3 < t.size() &&
          is_punct(t[arg + 1], "::") && is_ident(t[arg + 2], "thread") &&
          is_punct(t[arg + 3], "(")) {
        const std::vector<std::size_t> inner = call_args(f, arg + 3);
        if (inner.empty()) continue;
        arg = inner.front();
      }
      check_functor(arg, i);
    }
  }
}

// ---------------------------------------------------------------------------
// A4 contract-coverage
// ---------------------------------------------------------------------------

struct WatchedParam {
  std::string_view name;
  std::string_view kind;  ///< "hurst" | "probability" | "length"
};

bool fp_type(const std::vector<std::string_view>& type_idents) {
  for (const std::string_view s : type_idents) {
    if (s == "double" || s == "float") return true;
  }
  return false;
}

bool integer_type(const std::vector<std::string_view>& type_idents) {
  for (const std::string_view s : type_idents) {
    if (s == "size_t" || s == "int" || s == "long" || s == "unsigned" ||
        s == "uint32_t" || s == "uint64_t" || s == "int32_t" ||
        s == "int64_t" || s == "ptrdiff_t") {
      return true;
    }
  }
  return false;
}

void rule_contract_coverage(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& p = f.rel_path();
  if (!(under(p, "src/vbr/stats") || under(p, "src/vbr/model")) ||
      !p.ends_with(".cpp")) {
    return;
  }
  const Toks& t = f.tokens();

  for (const FunctionDef& def : f.functions()) {
    // Public surface only: skip internal linkage and anonymous namespaces.
    if (def.is_static || def.in_anonymous_namespace) continue;

    // Split parameters at top-level commas.
    std::vector<WatchedParam> watched;
    std::size_t start = def.params_open + 1;
    for (std::size_t j = def.params_open + 1; j <= def.params_close; ++j) {
      const bool at_end = j == def.params_close;
      if (!at_end &&
          (is_punct(t[j], "(") || is_punct(t[j], "[") || is_punct(t[j], "{") ||
           is_punct(t[j], "<"))) {
        const std::size_t m = f.match(j);
        if (m != SourceFile::npos && m < def.params_close) j = m;
        // `<` is unmatched by the bracket pass; tolerated below.
        continue;
      }
      if (!at_end && !is_punct(t[j], ",")) continue;
      // Parameter token range [start, j).
      std::vector<std::string_view> idents;
      std::string_view name;
      for (std::size_t k = start; k < j; ++k) {
        if (is_punct(t[k], "=")) break;  // default argument
        if (t[k].kind == TokKind::kIdent) {
          idents.push_back(t[k].text);
          name = t[k].text;
        }
      }
      start = j + 1;
      if (idents.size() < 2 || name.empty()) continue;
      idents.pop_back();  // the declared name is not part of the type

      if ((name == "hurst" || name == "target_hurst") && fp_type(idents)) {
        watched.push_back({name, "hurst"});
      } else if ((name == "p" || name == "prob" || name == "probability" ||
                  name.ends_with("_probability") || name.ends_with("_prob")) &&
                 fp_type(idents)) {
        watched.push_back({name, "probability"});
      } else if ((name == "n" || name == "len" || name == "length") &&
                 integer_type(idents)) {
        watched.push_back({name, "length"});
      }
    }

    for (const WatchedParam& param : watched) {
      bool validated = false;
      bool flagged = false;
      for (std::size_t j = def.body_open + 1;
           j < def.body_close && !validated && !flagged; ++j) {
        if (t[j].kind != TokKind::kIdent) continue;
        if (t[j].text.starts_with("VBR_") && is_call(t, j)) {
          const std::size_t close = f.match(j + 1);
          if (close == SourceFile::npos) break;
          for (std::size_t k = j + 2; k < close; ++k) {
            if (t[k].kind == TokKind::kIdent && t[k].text == param.name) {
              validated = true;
              break;
            }
          }
          j = close;
          continue;
        }
        if (t[j].text == param.name) {
          report(out, f, t[j].line, "vbr-contract-coverage",
                 "public " + std::string(param.kind) + " parameter '" +
                     std::string(param.name) + "' of '" +
                     std::string(def.name) +
                     "' is used before any VBR_ENSURE/VBR_CHECK_* validates "
                     "it");
          flagged = true;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// A5 naive-accumulation
// ---------------------------------------------------------------------------

/// Floating-point variable/member names declared anywhere in `f`.
void collect_fp_names(const SourceFile& f, std::set<std::string>& names) {
  const Toks& t = f.tokens();
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (is_ident(t[i], "double") || is_ident(t[i], "float")) {
      // `double name` where the previous token is not `<` (template arg is
      // handled by the vector pattern below).
      if (i > 0 && is_punct(t[i - 1], "<")) continue;
      std::size_t j = i + 1;
      while (j < t.size() && (is_punct(t[j], "&") || is_punct(t[j], "*"))) ++j;
      if (j < t.size() && t[j].kind == TokKind::kIdent && j + 1 < t.size()) {
        const Token& after = t[j + 1];
        if (is_punct(after, ";") || is_punct(after, "=") ||
            is_punct(after, ",") || is_punct(after, ")") ||
            is_punct(after, "{") || is_punct(after, "[")) {
          names.insert(std::string(t[j].text));
        }
      }
      continue;
    }
    if ((is_ident(t[i], "vector") || is_ident(t[i], "array") ||
         is_ident(t[i], "span")) &&
        is_punct(t[i + 1], "<")) {
      // vector<double> name / array<double, N> name / span<double> name.
      std::size_t j = i + 2;
      bool fp = false;
      std::size_t depth = 1;
      while (j < t.size() && depth > 0) {
        if (is_punct(t[j], "<")) ++depth;
        if (is_punct(t[j], ">")) --depth;
        if (depth == 1 && (is_ident(t[j], "double") || is_ident(t[j], "float"))) {
          fp = true;
        }
        ++j;
      }
      if (fp && j < t.size() && t[j].kind == TokKind::kIdent) {
        names.insert(std::string(t[j].text));
      }
    }
  }
}

void rule_naive_accumulation(const SourceFile& f,
                             const std::set<std::string>& fp_names,
                             std::vector<Finding>& out) {
  const Toks& t = f.tokens();

  const auto check_site = [&](std::size_t i, bool forced_loop) {
    if (t[i].kind != TokKind::kIdent ||
        !fp_names.contains(std::string(t[i].text))) {
      return;
    }
    std::size_t j = i + 1;
    if (j < t.size() && is_punct(t[j], "[")) {
      const std::size_t m = f.match(j);
      if (m == SourceFile::npos) return;
      j = m + 1;
    }
    if (j >= t.size() || !is_punct(t[j], "+=")) return;
    if (!forced_loop && !f.in_loop(i)) return;
    report(out, f, t[i].line, "vbr-naive-accumulation",
           "naive floating-point += reduction of '" + std::string(t[i].text) +
               "' in a loop; accumulate with vbr::KahanSum / kahan_total (or "
               "justify with NOLINT)");
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    check_site(i, false);
    // Braceless loop bodies never open a scope; scan the single statement.
    if ((is_ident(t[i], "for") || is_ident(t[i], "while")) && is_call(t, i)) {
      const std::size_t close = f.match(i + 1);
      if (close == SourceFile::npos || close + 1 >= t.size() ||
          is_punct(t[close + 1], "{")) {
        continue;
      }
      for (std::size_t j = close + 1; j < t.size() && !is_punct(t[j], ";");
           ++j) {
        check_site(j, true);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// A6 silent-catch
// ---------------------------------------------------------------------------

/// Catch handlers in the service and run layers sit on the fault-isolation
/// path: PR 10's contract is that a stream fault becomes either a rethrow or
/// a structured failure record (StreamFailure / SourceFailure), never a
/// swallowed exception. The heuristic for "records a failure" is an
/// identifier in the handler body mentioning fail/quarantine — the repo's
/// failure-recording surface (`record_failure`, `StreamFailure`,
/// `SourceFailure`, `quarantined`) all do; a bare log-and-continue does not.
void rule_silent_catch(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& p = f.rel_path();
  if (!under(p, "src/vbr/service") && !under(p, "src/vbr/run")) return;
  const Toks& t = f.tokens();
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "catch") || !is_punct(t[i + 1], "(")) continue;
    const std::size_t params_close = f.match(i + 1);
    if (params_close == SourceFile::npos || params_close + 1 >= t.size() ||
        !is_punct(t[params_close + 1], "{")) {
      continue;
    }
    const std::size_t body_open = params_close + 1;
    const std::size_t body_close = f.match(body_open);
    if (body_close == SourceFile::npos) continue;

    bool handled = false;
    for (std::size_t j = body_open + 1; j < body_close; ++j) {
      if (t[j].kind != TokKind::kIdent) continue;
      if (t[j].text == "throw") {
        handled = true;
        break;
      }
      std::string lower(t[j].text);
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (lower.find("fail") != std::string::npos ||
          lower.find("quarantine") != std::string::npos) {
        handled = true;
        break;
      }
    }
    if (!handled) {
      report(out, f, t[i].line, "vbr-silent-catch",
             "catch handler on the fault-isolation path neither rethrows nor "
             "records a structured failure; rethrow, record a "
             "StreamFailure/SourceFailure, or justify with "
             "NOLINT(vbr-silent-catch)");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Catalog + driver
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"vbr-fork-safety", "A1",
       "between fork()==0 and _exit/exec only async-signal-safe calls plus "
       "one terminal handoff; handoffs must _exit, never exit; fork stays "
       "inside src/vbr/sweep/"},
      {"vbr-rng-discipline", "A2",
       "no Rng captured by reference or passed as mutable Rng& across a "
       "parallel boundary; split per-task streams by value"},
      {"vbr-thread-boundary", "A3",
       "every thread entry point is noexcept or wraps its body in "
       "catch-and-report"},
      {"vbr-contract-coverage", "A4",
       "public stats/model functions VBR_ENSURE their hurst / probability / "
       "length parameters before first use"},
      {"vbr-naive-accumulation", "A5",
       "floating-point += reductions in src/vbr/stream/ loops use the "
       "Kahan/pairwise helpers"},
      {"vbr-silent-catch", "A6",
       "catch handlers in src/vbr/service/ and src/vbr/run/ rethrow or "
       "record a structured failure, never swallow"},
      {"vbr-rng-purity", "R1",
       "stdlib RNGs appear only in src/vbr/common/rng.cpp"},
      {"vbr-lgamma-reentrancy", "R2",
       "bare lgamma appears only in src/vbr/common/special_functions.cpp"},
      {"vbr-mutable-static", "R3",
       "no mutable static state in library sources outside reviewed caches"},
      {"vbr-naked-new", "R4", "no naked new/delete expressions"},
      {"vbr-pragma-once", "R5", "every header opens with #pragma once"},
      {"vbr-atomic-artifacts", "R6",
       "artifact writes go through vbr::write_file_atomic"},
      {"vbr-suppression", "meta",
       "NOLINT(vbr-*) markers must name known rules and carry a "
       "justification"},
  };
  return kCatalog;
}

bool is_known_rule(std::string_view id) {
  for (const RuleInfo& info : rule_catalog()) {
    if (info.id == id) return true;
  }
  return false;
}

void run_rules(const std::vector<SourceFile>& files,
               std::vector<Finding>& findings) {
  // A5's floating-point name sets are shared between a .cpp and its header
  // (members are declared in the .hpp, accumulated in the .cpp): merge by
  // path stem within src/vbr/stream/ and src/vbr/service/ (the service
  // keeps running totals over unbounded sample streams, exactly the sums
  // A5 exists to protect).
  std::map<std::string, std::set<std::string>> stream_fp;
  for (const SourceFile& f : files) {
    const std::string& p = f.rel_path();
    if (!under(p, "src/vbr/stream") && !under(p, "src/vbr/service")) continue;
    const std::size_t dot = p.rfind('.');
    collect_fp_names(f, stream_fp[p.substr(0, dot)]);
  }

  ForkScan fork_scan;
  for (const SourceFile& f : files) {
    rule_token_scans(f, findings);
    rule_mutable_static(f, findings);
    rule_pragma_once(f, findings);
    rule_atomic_artifacts(f, findings);
    rule_fork_safety_blocks(f, fork_scan, findings);
    rule_rng_discipline(f, findings);
    rule_thread_boundary(f, findings);
    rule_contract_coverage(f, findings);
    rule_silent_catch(f, findings);
    const std::string& p = f.rel_path();
    if (under(p, "src/vbr/stream") || under(p, "src/vbr/service")) {
      const std::size_t dot = p.rfind('.');
      rule_naive_accumulation(f, stream_fp[p.substr(0, dot)], findings);
    }
  }
  rule_fork_safety_handoffs(files, fork_scan, findings);
}

}  // namespace vbr::analyze
