// vbr_analyze: token-aware static analyzer for the repo's determinism,
// fork-safety, and contract-coverage invariants. See DESIGN.md §11.
//
// Usage:
//   vbr_analyze [--root DIR] [--json] [--baseline FILE] [--list-rules]
//               [--fixture FILE] [paths...]
//
// Exit status is min(#findings, 125) so CI and ctest fail on any finding.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"
#include "source.hpp"

namespace fs = std::filesystem;
using vbr::analyze::Finding;
using vbr::analyze::SourceFile;
using vbr::analyze::Suppression;
using vbr::analyze::SuppressKind;

namespace {

constexpr std::string_view kFixtureHeader = "// vbr-analyze-fixture:";

bool is_source_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

/// Directories scanned by default, relative to --root.
const std::vector<std::string>& default_dirs() {
  static const std::vector<std::string> kDirs = {"src",  "bench", "examples",
                                                 "fuzz", "tests", "tools"};
  return kDirs;
}

std::vector<std::string> discover(const fs::path& root,
                                  const std::vector<std::string>& paths) {
  std::vector<std::string> rel;
  const auto add_tree = [&](const fs::path& dir) {
    if (!fs::exists(dir)) return;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !is_source_ext(entry.path())) continue;
      const std::string r = fs::relative(entry.path(), root).generic_string();
      // Fixtures are deliberately-broken snippets; only --fixture reads them.
      if (r.starts_with("tests/analyzer_fixtures/")) continue;
      rel.push_back(r);
    }
  };
  if (paths.empty()) {
    for (const std::string& d : default_dirs()) add_tree(root / d);
  } else {
    for (const std::string& p : paths) {
      const fs::path full = root / p;
      if (fs::is_directory(full)) {
        add_tree(full);
      } else {
        rel.push_back(fs::path(p).generic_string());
      }
    }
  }
  std::sort(rel.begin(), rel.end());
  rel.erase(std::unique(rel.begin(), rel.end()), rel.end());
  return rel;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Apply NOLINT markers to `findings`, erasing suppressed entries and
/// appending vbr-suppression findings for malformed markers.
void apply_suppressions(const std::vector<SourceFile>& files,
                        std::vector<Finding>& findings) {
  std::vector<Finding> meta;

  for (const SourceFile& f : files) {
    // Validate markers and build the per-line suppression map.
    //   line -> set of rules suppressed on that line
    std::map<std::size_t, std::set<std::string>> by_line;
    std::vector<const Suppression*> begin_stack;

    const auto vbr_rules = [](const Suppression& s) {
      std::vector<std::string> rules;
      for (const std::string& r : s.rules) {
        if (r.starts_with("vbr-")) rules.push_back(r);
      }
      return rules;
    };

    for (const Suppression& s : f.suppressions()) {
      const std::vector<std::string> rules = vbr_rules(s);
      if (s.has_rule_list && rules.empty()) {
        continue;  // clang-tidy-only marker, e.g. NOLINT(bugprone-*): ours to ignore
      }
      if (!s.has_rule_list) {
        if (s.kind == SuppressKind::kEnd) {
          // END may omit the list; it closes the innermost BEGIN.
          if (begin_stack.empty()) {
            meta.push_back({f.rel_path(), s.line, "vbr-suppression",
                            "NOLINTEND without a matching NOLINTBEGIN"});
          } else {
            begin_stack.pop_back();
          }
          continue;
        }
        meta.push_back({f.rel_path(), s.line, "vbr-suppression",
                        "blanket NOLINT is not allowed; name the vbr-* rule "
                        "being suppressed"});
        continue;
      }
      bool valid = true;
      for (const std::string& r : rules) {
        if (!vbr::analyze::is_known_rule(r)) {
          meta.push_back({f.rel_path(), s.line, "vbr-suppression",
                          "unknown rule '" + r + "' in NOLINT marker"});
          valid = false;
        }
        if (r == "vbr-suppression") {
          meta.push_back({f.rel_path(), s.line, "vbr-suppression",
                          "vbr-suppression itself cannot be suppressed"});
          valid = false;
        }
      }
      if (s.kind != SuppressKind::kEnd && s.justification.empty()) {
        meta.push_back({f.rel_path(), s.line, "vbr-suppression",
                        "suppression needs a written justification: "
                        "// NOLINT(rule): <why this is safe>"});
        valid = false;
      }
      if (!valid) continue;

      switch (s.kind) {
        case SuppressKind::kLine:
          for (const std::string& r : rules) by_line[s.line].insert(r);
          break;
        case SuppressKind::kNextLine:
          for (const std::string& r : rules) by_line[s.line + 1].insert(r);
          break;
        case SuppressKind::kBegin:
          begin_stack.push_back(&s);
          break;
        case SuppressKind::kEnd: {
          if (begin_stack.empty()) {
            meta.push_back({f.rel_path(), s.line, "vbr-suppression",
                            "NOLINTEND without a matching NOLINTBEGIN"});
            break;
          }
          const Suppression* begin = begin_stack.back();
          begin_stack.pop_back();
          for (const std::string& r : vbr_rules(*begin)) {
            for (std::size_t ln = begin->line; ln <= s.line; ++ln) {
              by_line[ln].insert(r);
            }
          }
          break;
        }
      }
    }
    for (const Suppression* begin : begin_stack) {
      meta.push_back({f.rel_path(), begin->line, "vbr-suppression",
                      "NOLINTBEGIN without a matching NOLINTEND"});
    }

    if (by_line.empty()) continue;
    std::erase_if(findings, [&](const Finding& fd) {
      if (fd.file != f.rel_path()) return false;
      const auto it = by_line.find(fd.line);
      return it != by_line.end() && it->second.contains(fd.rule);
    });
  }

  findings.insert(findings.end(), meta.begin(), meta.end());
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// Baseline format: one `path [rule] count` per line, '#' comments. Findings
/// within the (file, rule) budget are silenced; an overflow reports all of
/// them so the overflow is visible in context.
void apply_baseline(const fs::path& baseline_file,
                    std::vector<Finding>& findings) {
  std::ifstream in(baseline_file);
  if (!in) return;
  std::map<std::pair<std::string, std::string>, std::size_t> budget;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string path, rule;
    std::size_t count = 0;
    if (!(ls >> path) || path.starts_with("#")) continue;
    if (!(ls >> rule >> count)) continue;
    if (rule.size() > 2 && rule.front() == '[' && rule.back() == ']') {
      rule = rule.substr(1, rule.size() - 2);
    }
    budget[{path, rule}] = count;
  }
  if (budget.empty()) return;

  std::map<std::pair<std::string, std::string>, std::size_t> seen;
  for (const Finding& fd : findings) ++seen[{fd.file, fd.rule}];
  std::erase_if(findings, [&](const Finding& fd) {
    const auto key = std::make_pair(fd.file, fd.rule);
    const auto it = budget.find(key);
    return it != budget.end() && seen[key] <= it->second;
  });
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_findings(const std::vector<Finding>& findings, bool json) {
  if (json) {
    std::cout << "[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& fd = findings[i];
      std::cout << (i == 0 ? "\n" : ",\n")
                << "  {\"file\": \"" << json_escape(fd.file)
                << "\", \"line\": " << fd.line << ", \"rule\": \"" << fd.rule
                << "\", \"message\": \"" << json_escape(fd.message) << "\"}";
    }
    std::cout << (findings.empty() ? "]\n" : "\n]\n");
    return;
  }
  for (const Finding& fd : findings) {
    std::cout << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
              << fd.message << "\n";
  }
  if (!findings.empty()) {
    std::cout << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
  }
}

int exit_code(std::size_t findings) {
  return static_cast<int>(std::min<std::size_t>(findings, 125));
}

// ---------------------------------------------------------------------------
// Fixture mode
// ---------------------------------------------------------------------------

/// A fixture's first line is `// vbr-analyze-fixture: <pretend-rel-path>`;
/// the file is analyzed as if it lived at that path, so rule dir scoping
/// applies without polluting the real tree.
int run_fixture(const fs::path& file, bool json) {
  std::ifstream in(file);
  if (!in) {
    std::cerr << "vbr_analyze: cannot read fixture " << file << "\n";
    return 126;
  }
  std::string first;
  std::getline(in, first);
  if (!first.starts_with(kFixtureHeader)) {
    std::cerr << "vbr_analyze: fixture missing '" << kFixtureHeader
              << " <pretend-path>' header: " << file << "\n";
    return 126;
  }
  std::string pretend = first.substr(kFixtureHeader.size());
  const std::size_t ws = pretend.find_first_not_of(" \t");
  pretend = ws == std::string::npos ? "" : pretend.substr(ws);
  if (pretend.empty()) {
    std::cerr << "vbr_analyze: empty pretend path in fixture " << file << "\n";
    return 126;
  }
  std::optional<SourceFile> sf = SourceFile::load(file.string(), pretend);
  if (!sf) {
    std::cerr << "vbr_analyze: cannot load fixture " << file << "\n";
    return 126;
  }
  std::vector<SourceFile> files;
  files.push_back(std::move(*sf));
  std::vector<Finding> findings;
  vbr::analyze::run_rules(files, findings);
  apply_suppressions(files, findings);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  print_findings(findings, json);
  return exit_code(findings.size());
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path baseline_file;
  bool baseline_set = false;
  bool json = false;
  bool list_rules = false;
  std::string fixture;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "vbr_analyze: " << arg << " needs a value\n";
        std::exit(126);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value();
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--baseline") {
      baseline_file = value();
      baseline_set = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--fixture") {
      fixture = value();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: vbr_analyze [--root DIR] [--json] [--baseline FILE]"
                   " [--list-rules] [--fixture FILE] [paths...]\n";
      return 0;
    } else if (arg.starts_with("--")) {
      std::cerr << "vbr_analyze: unknown option " << arg << "\n";
      return 126;
    } else {
      paths.emplace_back(arg);
    }
  }

  if (list_rules) {
    for (const vbr::analyze::RuleInfo& info : vbr::analyze::rule_catalog()) {
      std::cout << info.id << " (" << info.legacy << "): " << info.summary
                << "\n";
    }
    return 0;
  }
  if (!fixture.empty()) return run_fixture(fixture, json);

  if (!baseline_set) baseline_file = root / "tools/vbr_analyze/baseline.txt";

  std::vector<SourceFile> files;
  for (const std::string& rel : discover(root, paths)) {
    std::optional<SourceFile> sf = SourceFile::load((root / rel).string(), rel);
    if (!sf) {
      std::cerr << "vbr_analyze: cannot read " << rel << "\n";
      return 126;
    }
    files.push_back(std::move(*sf));
  }

  std::vector<Finding> findings;
  vbr::analyze::run_rules(files, findings);
  apply_suppressions(files, findings);
  apply_baseline(baseline_file, findings);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  print_findings(findings, json);
  return exit_code(findings.size());
}
