// capacity_planning: the paper's engineering use-case (Section 5).
//
// Given a number of multiplexed VBR video sources, a buffer-delay budget
// and a target cell-loss rate, compute the required channel capacity per
// source and report the statistical multiplexing gain realized.
//
// Usage: ./capacity_planning [sources] [delay_ms] [target_loss]
//   defaults: 5 sources, 2 ms, 1e-4
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "vbr/common/error.hpp"
#include "vbr/model/starwars_surrogate.hpp"
#include "vbr/net/qc_analysis.hpp"

namespace {

/// Strict numeric argv parsing: trailing junk, overflow and empty strings
/// all exit 2 with a usage-style message instead of aborting mid-throw.
std::size_t parse_size(const char* text, const char* what) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "capacity_planning: bad %s: %s\n", what, text);
    std::exit(2);
  }
  return static_cast<std::size_t>(v);
}

double parse_double(const char* text, const char* what) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !std::isfinite(v)) {
    std::fprintf(stderr, "capacity_planning: bad %s: %s\n", what, text);
    std::exit(2);
  }
  return v;
}

int run(int argc, char** argv) {
  const std::size_t sources = (argc > 1) ? parse_size(argv[1], "source count") : 5;
  const double delay_ms = (argc > 2) ? parse_double(argv[2], "delay_ms") : 2.0;
  const double target_loss = (argc > 3) ? parse_double(argv[3], "target_loss") : 1e-4;
  VBR_ENSURE(sources >= 1 && sources <= 4096, "sources must be in [1, 4096]");
  VBR_ENSURE(delay_ms > 0.0, "delay_ms must be positive");
  VBR_ENSURE(target_loss > 0.0 && target_loss < 1.0, "target_loss must be in (0, 1)");

  std::printf("Capacity planning for %zu multiplexed VBR video source(s)\n", sources);
  std::printf("  buffer delay budget: %.2f ms, target loss rate: %.1e\n\n", delay_ms,
              target_loss);

  // Workload: the calibrated surrogate trace (swap in your own measured
  // trace via vbr::trace::read_ascii and pass .samples()).
  vbr::model::SurrogateOptions trace_options;
  trace_options.frames = 65536;
  const auto surrogate = vbr::model::make_starwars_surrogate(trace_options);

  vbr::net::MuxExperiment experiment;
  experiment.sources = sources;
  experiment.replications = (sources > 2) ? 6 : 1;  // as in the paper
  const vbr::net::MuxWorkload workload(surrogate.frames.samples(), experiment);

  const double mean_bps = workload.source_mean_rate_bps();
  const double peak_bps = workload.source_peak_rate_bps();
  std::printf("Per-source traffic:  mean %.2f Mb/s, peak %.2f Mb/s (burstiness %.2f)\n",
              mean_bps / 1e6, peak_bps / 1e6, peak_bps / mean_bps);

  const double required = vbr::net::required_capacity_bps(
      workload, delay_ms * 1e-3, target_loss, vbr::net::QosMeasure::kOverallLoss);
  std::printf("\nRequired allocation: %.2f Mb/s per source (%.2f Mb/s total)\n",
              required / 1e6, required * static_cast<double>(sources) / 1e6);

  // SMG bookkeeping: how much of the peak-to-mean gap did multiplexing close?
  const double gain_realized = (peak_bps - required) / (peak_bps - mean_bps);
  std::printf("Overbooking factor vs peak: %.2f; statistical multiplexing gain: %.0f%%\n",
              peak_bps / required, 100.0 * gain_realized);

  // Sanity check the allocation and report both QOS measures.
  const auto qos = workload.evaluate(required, delay_ms * 1e-3);
  std::printf("\nAchieved QOS at this allocation:\n");
  std::printf("  overall loss rate      P_l     = %.2e\n", qos.overall_loss);
  std::printf("  worst errored second   P_l-WES = %.2e\n", qos.wes_loss);

  // Neighborhood of the operating point: the Q-C tradeoff (cf. Fig. 14).
  std::printf("\nQ-C tradeoff around the delay budget:\n");
  std::printf("  %10s %18s\n", "T_max (ms)", "capacity (Mb/s)");
  const std::vector<double> delays{delay_ms * 0.25e-3, delay_ms * 0.5e-3, delay_ms * 1e-3,
                                   delay_ms * 2e-3, delay_ms * 4e-3};
  for (const auto& point :
       vbr::net::qc_curve(workload, delays, target_loss, vbr::net::QosMeasure::kOverallLoss)) {
    std::printf("  %10.2f %18.2f\n", point.max_delay_seconds * 1e3,
                point.capacity_per_source_bps / 1e6);
  }
  std::printf("\nNote the knee: below it capacity explodes, above it extra buffer buys\n");
  std::printf("little -- the natural operating point the paper identifies.\n");
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "capacity_planning: %s\n", e.what());
    return 1;
  }
}
