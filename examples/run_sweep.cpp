// run_sweep: process-isolated §5 evaluation sweep with watchdogs, resource
// ceilings, retry/quarantine, an append-only result log, and sharded
// multi-pool work-stealing dispatch.
//
// Single-pool mode drives vbr::sweep::run_sweep(): every cell of the
// queue × Hurst × utilization × buffer × sources grid runs in a forked
// worker under a watchdog deadline and setrlimit ceilings. Crashed, hung,
// and OOM-killed workers are retried from the cell's deterministic seed
// (requeued with a due time — one flaky cell never stalls the rest);
// cells that fail every attempt are quarantined with a structured failure
// record. Progress appends to the VBRSWPL1 result log after every settled
// cell — O(1) per cell — so SIGKILLing this process and rerunning the same
// command with --resume truncates any torn tail, salvages all settled
// cells, and finishes with a results hash bit-identical to an
// uninterrupted run. The crash-soak harness (scripts/crash_soak.sh sweep)
// does exactly that in a loop.
//
// Sharded mode (--shard-dir) forks N work-stealing pools over a shared
// directory of per-shard logs claimed through file leases; a killed pool's
// lease expires and a survivor steals and replays its shard from the log
// prefix. Rerunning the same command resumes the whole sweep; --merge-only
// collects without computing. scripts/crash_soak.sh --shard soaks this.
//
// Usage:
//   ./run_sweep --log FILE | --shard-dir DIR [options]
//       --log FILE           single-pool result log (--manifest is an alias)
//       --queues LIST        comma list of fluid,cell,fbm   (default fluid)
//       --hursts LIST        comma list of H values         (default 0.8)
//       --utilizations LIST  comma list in (0,1]            (default 0.9)
//       --buffers-ms LIST    comma list of delay budgets    (default 10)
//       --sources LIST       comma list of source counts    (default 1)
//       --frames N           frames per source              (default 4096)
//       --seed S             master seed                    (default 1994)
//       --deadline-sec X     per-attempt watchdog, 0 = off  (default 60)
//       --mem-mib N          RLIMIT_AS ceiling, 0 = off     (default 0)
//       --cpu-sec N          RLIMIT_CPU ceiling, 0 = off    (default 0)
//       --attempts N         tries per cell                 (default 3)
//       --backoff-ms N       base retry backoff             (default 0)
//       --no-isolate         evaluate in-process (no fork per cell; fastest
//                            at large scale, no crash containment)
//       --resume             continue from the log if present
//       --durable            fsync log appends
//       --hash-out FILE      write the results hash (hex) atomically
//       --export-manifest F  also write merged records as a VBRSWEP1 manifest
//       --quiet              suppress per-cell progress lines
//   Sharded dispatch:
//       --shard-dir DIR      shared sweep directory (enables sharded mode)
//       --shards N           shard count                    (default 8)
//       --pools N            work-stealing pool processes   (default 4)
//       --lease-ttl X        steal leases staler than X sec (default 10)
//       --heartbeat X        lease refresh period           (default 1)
//       --merge-only         collect + merge existing logs, compute nothing
//   Fault injection (soak/test seam; disabled by default):
//       --fault-rate P       P(first attempt faults) per cell
//       --fault-seed S       fault stream seed              (default 7)
//       --fault-kinds LIST   comma subset of crash,hang,oom (default all)
//       --poison LIST        comma list of cell indexes that always fail
//       --kill-pool LIST     comma list of POOL:RECORDS — SIGKILL pool POOL
//                            after it appends RECORDS records
//       --torn-tail          killed pools also leave a torn log tail
//       --duplicate-claim N  pool N claims one shard through a fresh lease
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "vbr/common/atomic_file.hpp"
#include "vbr/common/error.hpp"
#include "vbr/sweep/dispatch.hpp"
#include "vbr/sweep/supervisor.hpp"

namespace {

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "run_sweep: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

double parse_f64(const char* text, const char* flag) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "run_sweep: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return v;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = (comma == std::string::npos) ? text.size() : comma;
    parts.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

std::vector<double> parse_f64_list(const char* text, const char* flag) {
  std::vector<double> values;
  for (const std::string& part : split_csv(text)) {
    values.push_back(parse_f64(part.c_str(), flag));
  }
  return values;
}

std::vector<std::uint64_t> parse_u64_list(const char* text, const char* flag) {
  std::vector<std::uint64_t> values;
  for (const std::string& part : split_csv(text)) {
    values.push_back(parse_u64(part.c_str(), flag));
  }
  return values;
}

/// "POOL:RECORDS" pairs for --kill-pool.
std::map<std::size_t, std::uint64_t> parse_kill_plan(const char* text) {
  std::map<std::size_t, std::uint64_t> plan;
  for (const std::string& part : split_csv(text)) {
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "run_sweep: --kill-pool expects POOL:RECORDS, got %s\n",
                   part.c_str());
      std::exit(2);
    }
    const std::uint64_t pool = parse_u64(part.substr(0, colon).c_str(), "--kill-pool");
    const std::uint64_t records =
        parse_u64(part.substr(colon + 1).c_str(), "--kill-pool");
    plan[static_cast<std::size_t>(pool)] = records;
  }
  return plan;
}

int usage() {
  std::fprintf(stderr,
               "usage: run_sweep --log FILE | --shard-dir DIR [--queues LIST]\n"
               "                 [--hursts LIST] [--utilizations LIST]\n"
               "                 [--buffers-ms LIST] [--sources LIST] [--frames N]\n"
               "                 [--seed S] [--deadline-sec X] [--mem-mib N]\n"
               "                 [--cpu-sec N] [--attempts N] [--backoff-ms N]\n"
               "                 [--no-isolate] [--resume] [--durable]\n"
               "                 [--hash-out FILE] [--export-manifest FILE] [--quiet]\n"
               "                 [--shards N] [--pools N] [--lease-ttl X]\n"
               "                 [--heartbeat X] [--merge-only]\n"
               "                 [--fault-rate P] [--fault-seed S]\n"
               "                 [--fault-kinds LIST] [--poison LIST]\n"
               "                 [--kill-pool LIST] [--torn-tail]\n"
               "                 [--duplicate-claim N]\n");
  return 2;
}

void write_hash_out(const std::string& hash_out, std::uint64_t hash) {
  if (hash_out.empty()) return;
  char line[32];
  std::snprintf(line, sizeof line, "%016" PRIx64 "\n", hash);
  vbr::write_file_atomic(hash_out, line);
}

void export_manifest(const std::string& path, const vbr::sweep::SweepGrid& grid,
                     const vbr::sweep::SweepReport& report) {
  if (path.empty()) return;
  vbr::sweep::SweepManifest manifest;
  manifest.fingerprint = vbr::sweep::sweep_fingerprint(grid);
  manifest.total_cells = report.total_cells;
  manifest.records = report.records;
  vbr::sweep::save_manifest(path, manifest);
}

void print_report(const vbr::sweep::SweepReport& report) {
  std::printf("cells        %zu\n", report.total_cells);
  std::printf("completed    %zu\n", report.completed);
  std::printf("quarantined  %zu\n", report.quarantined);
  std::printf("resumed      %zu\n", report.resumed_cells);
  std::printf("retries      %zu\n", report.retried_attempts);
  std::printf("results_hash %016" PRIx64 "\n", report.results_hash);
  for (const vbr::sweep::CellRecord& record : report.records) {
    if (record.status != vbr::sweep::CellStatus::kQuarantined) continue;
    std::printf("quarantine   cell %" PRIu64 " %s attempts=%" PRIu64
                " signal=%d exit=%d rss_kib=%" PRIu64 ": %s\n",
                record.cell_index, vbr::sweep::failure_kind_name(record.failure.kind),
                record.failure.attempts, record.failure.term_signal,
                record.failure.exit_code, record.failure.max_rss_kib,
                record.failure.message.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  vbr::sweep::SweepOptions options;
  options.faults.seed = 7;
  std::string hash_out;
  std::string manifest_out;
  bool quiet = false;

  std::string shard_dir;
  std::uint64_t shards = 8;
  std::size_t pools = 4;
  vbr::sweep::LeaseConfig lease{10.0, 1.0};
  bool merge_only = false;
  std::map<std::size_t, std::uint64_t> kill_plan;
  bool torn_tail = false;
  std::size_t duplicate_claim_pool = static_cast<std::size_t>(-1);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "run_sweep: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--log" || arg == "--manifest") {
      options.log_path = next();
    } else if (arg == "--queues") {
      options.grid.queues.clear();
      for (const std::string& name : split_csv(next())) {
        try {
          options.grid.queues.push_back(vbr::sweep::parse_queue_kind(name));
        } catch (const vbr::Error& e) {
          std::fprintf(stderr, "run_sweep: %s\n", e.what());
          return 2;
        }
      }
    } else if (arg == "--hursts") {
      options.grid.hursts = parse_f64_list(next(), "--hursts");
    } else if (arg == "--utilizations") {
      options.grid.utilizations = parse_f64_list(next(), "--utilizations");
    } else if (arg == "--buffers-ms") {
      options.grid.buffer_ms = parse_f64_list(next(), "--buffers-ms");
    } else if (arg == "--sources") {
      options.grid.sources.clear();
      for (const std::uint64_t n : parse_u64_list(next(), "--sources")) {
        options.grid.sources.push_back(static_cast<std::size_t>(n));
      }
    } else if (arg == "--frames") {
      options.grid.frames_per_source =
          static_cast<std::size_t>(parse_u64(next(), "--frames"));
    } else if (arg == "--seed") {
      options.grid.seed = parse_u64(next(), "--seed");
    } else if (arg == "--deadline-sec") {
      options.limits.worker.deadline_seconds = parse_f64(next(), "--deadline-sec");
    } else if (arg == "--mem-mib") {
      options.limits.worker.memory_bytes = parse_u64(next(), "--mem-mib") << 20;
    } else if (arg == "--cpu-sec") {
      options.limits.worker.cpu_seconds = parse_u64(next(), "--cpu-sec");
    } else if (arg == "--attempts") {
      options.limits.max_attempts =
          static_cast<std::size_t>(parse_u64(next(), "--attempts"));
    } else if (arg == "--backoff-ms") {
      options.limits.backoff_seconds =
          static_cast<double>(parse_u64(next(), "--backoff-ms")) / 1000.0;
    } else if (arg == "--no-isolate") {
      options.limits.isolate = false;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--durable") {
      options.durable = true;
    } else if (arg == "--hash-out") {
      hash_out = next();
    } else if (arg == "--export-manifest") {
      manifest_out = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--shard-dir") {
      shard_dir = next();
    } else if (arg == "--shards") {
      shards = parse_u64(next(), "--shards");
    } else if (arg == "--pools") {
      pools = static_cast<std::size_t>(parse_u64(next(), "--pools"));
    } else if (arg == "--lease-ttl") {
      lease.ttl_seconds = parse_f64(next(), "--lease-ttl");
    } else if (arg == "--heartbeat") {
      lease.heartbeat_seconds = parse_f64(next(), "--heartbeat");
    } else if (arg == "--merge-only") {
      merge_only = true;
    } else if (arg == "--fault-rate") {
      options.faults.rate = parse_f64(next(), "--fault-rate");
    } else if (arg == "--fault-seed") {
      options.faults.seed = parse_u64(next(), "--fault-seed");
    } else if (arg == "--fault-kinds") {
      options.faults.crash = options.faults.hang = options.faults.oom = false;
      for (const std::string& kind : split_csv(next())) {
        if (kind == "crash") {
          options.faults.crash = true;
        } else if (kind == "hang") {
          options.faults.hang = true;
        } else if (kind == "oom") {
          options.faults.oom = true;
        } else {
          std::fprintf(stderr, "run_sweep: unknown fault kind: %s\n", kind.c_str());
          return 2;
        }
      }
    } else if (arg == "--poison") {
      options.faults.poison = parse_u64_list(next(), "--poison");
    } else if (arg == "--kill-pool") {
      kill_plan = parse_kill_plan(next());
    } else if (arg == "--torn-tail") {
      torn_tail = true;
    } else if (arg == "--duplicate-claim") {
      duplicate_claim_pool = static_cast<std::size_t>(parse_u64(next(), "--duplicate-claim"));
    } else {
      return usage();
    }
  }
  const bool sharded = !shard_dir.empty();
  if (sharded == !options.log_path.empty()) return usage();  // exactly one mode

  if (!quiet) {
    options.on_cell_settled = [](const vbr::sweep::CellRecord& record) {
      if (record.status == vbr::sweep::CellStatus::kDone) {
        std::fprintf(stderr, "cell %6" PRIu64 "  done        loss=%.3e\n",
                     record.cell_index, record.result.loss_rate);
      } else {
        std::fprintf(stderr, "cell %6" PRIu64 "  quarantined %s: %s\n",
                     record.cell_index,
                     vbr::sweep::failure_kind_name(record.failure.kind),
                     record.failure.message.c_str());
      }
    };
  }

  try {
    if (!sharded) {
      const vbr::sweep::SweepReport report = vbr::sweep::run_sweep(options);
      print_report(report);
      write_hash_out(hash_out, report.results_hash);
      export_manifest(manifest_out, options.grid, report);
      return 0;
    }

    vbr::sweep::PoolOptions pool_options;
    pool_options.sweep_dir = shard_dir;
    pool_options.grid = options.grid;
    pool_options.shard_count = shards;
    pool_options.lease = lease;
    pool_options.limits = options.limits;
    pool_options.faults = options.faults;
    pool_options.durable = options.durable;
    pool_options.on_cell_settled = options.on_cell_settled;

    if (!merge_only) {
      const vbr::sweep::MultiPoolReport multi = vbr::sweep::run_pools(
          pool_options, pools, [&](std::size_t pool) {
            vbr::sweep::PoolFaultPlan plan;
            if (const auto it = kill_plan.find(pool); it != kill_plan.end()) {
              plan.kill_after_records = it->second;
              plan.torn_tail_on_kill = torn_tail;
            }
            plan.duplicate_claim = pool == duplicate_claim_pool;
            return plan;
          });
      std::printf("pools        %zu\n", multi.pools);
      std::printf("pools_failed %zu\n", multi.pools_failed);
      if (!multi.sweep_complete) {
        // Injected (or real) pool deaths outran the survivors. Everything
        // settled so far is on disk; rerunning the same command steals the
        // orphaned shards and finishes — the soak does exactly that.
        std::fprintf(stderr,
                     "run_sweep: sweep incomplete (%zu of %zu pools failed); "
                     "rerun to resume\n",
                     multi.pools_failed, multi.pools);
        return 3;
      }
    }

    const vbr::sweep::SweepReport report =
        vbr::sweep::collect_sweep(shard_dir, options.grid, shards,
                                  /*require_complete=*/true);
    print_report(report);
    write_hash_out(hash_out, report.results_hash);
    export_manifest(manifest_out, options.grid, report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_sweep: %s\n", e.what());
    return 1;
  }
  return 0;
}
