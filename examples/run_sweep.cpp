// run_sweep: process-isolated §5 evaluation sweep with watchdogs, resource
// ceilings, retry/quarantine, and a resumable manifest.
//
// Drives vbr::sweep::run_sweep() from the command line: every cell of the
// queue × Hurst × utilization × buffer × sources grid runs in a forked
// worker under a watchdog deadline and setrlimit ceilings. Crashed, hung,
// and OOM-killed workers are retried from the cell's deterministic seed;
// cells that fail every attempt are quarantined with a structured failure
// record and the sweep keeps going. Progress persists in the manifest after
// every settled cell, so SIGKILLing this process and rerunning the same
// command with --resume salvages all settled cells and finishes with a
// results hash bit-identical to an uninterrupted run. The crash-soak
// harness (scripts/crash_soak.sh sweep) does exactly that in a loop.
//
// Usage:
//   ./run_sweep --manifest FILE [options]
//       --queues LIST        comma list of fluid,cell,fbm   (default fluid)
//       --hursts LIST        comma list of H values         (default 0.8)
//       --utilizations LIST  comma list in (0,1]            (default 0.9)
//       --buffers-ms LIST    comma list of delay budgets    (default 10)
//       --sources LIST       comma list of source counts    (default 1)
//       --frames N           frames per source              (default 4096)
//       --seed S             master seed                    (default 1994)
//       --deadline-sec X     per-attempt watchdog, 0 = off  (default 60)
//       --mem-mib N          RLIMIT_AS ceiling, 0 = off     (default 0)
//       --cpu-sec N          RLIMIT_CPU ceiling, 0 = off    (default 0)
//       --attempts N         tries per cell                 (default 3)
//       --backoff-ms N       base retry backoff             (default 0)
//       --resume             continue from the manifest if present
//       --durable            fsync manifest saves
//       --hash-out FILE      write the results hash (hex) atomically
//       --quiet              suppress per-cell progress lines
//   Fault injection (soak/test seam; disabled by default):
//       --fault-rate P       P(first attempt faults) per cell
//       --fault-seed S       fault stream seed              (default 7)
//       --fault-kinds LIST   comma subset of crash,hang,oom (default all)
//       --poison LIST        comma list of cell indexes that always fail
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "vbr/common/atomic_file.hpp"
#include "vbr/common/error.hpp"
#include "vbr/sweep/supervisor.hpp"

namespace {

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "run_sweep: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

double parse_f64(const char* text, const char* flag) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "run_sweep: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return v;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = (comma == std::string::npos) ? text.size() : comma;
    parts.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

std::vector<double> parse_f64_list(const char* text, const char* flag) {
  std::vector<double> values;
  for (const std::string& part : split_csv(text)) {
    values.push_back(parse_f64(part.c_str(), flag));
  }
  return values;
}

std::vector<std::uint64_t> parse_u64_list(const char* text, const char* flag) {
  std::vector<std::uint64_t> values;
  for (const std::string& part : split_csv(text)) {
    values.push_back(parse_u64(part.c_str(), flag));
  }
  return values;
}

int usage() {
  std::fprintf(stderr,
               "usage: run_sweep --manifest FILE [--queues LIST] [--hursts LIST]\n"
               "                 [--utilizations LIST] [--buffers-ms LIST]\n"
               "                 [--sources LIST] [--frames N] [--seed S]\n"
               "                 [--deadline-sec X] [--mem-mib N] [--cpu-sec N]\n"
               "                 [--attempts N] [--backoff-ms N] [--resume]\n"
               "                 [--durable] [--hash-out FILE] [--quiet]\n"
               "                 [--fault-rate P] [--fault-seed S]\n"
               "                 [--fault-kinds LIST] [--poison LIST]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  vbr::sweep::SweepOptions options;
  options.faults.seed = 7;
  std::string hash_out;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "run_sweep: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--manifest") {
      options.manifest_path = next();
    } else if (arg == "--queues") {
      options.grid.queues.clear();
      for (const std::string& name : split_csv(next())) {
        try {
          options.grid.queues.push_back(vbr::sweep::parse_queue_kind(name));
        } catch (const vbr::Error& e) {
          std::fprintf(stderr, "run_sweep: %s\n", e.what());
          return 2;
        }
      }
    } else if (arg == "--hursts") {
      options.grid.hursts = parse_f64_list(next(), "--hursts");
    } else if (arg == "--utilizations") {
      options.grid.utilizations = parse_f64_list(next(), "--utilizations");
    } else if (arg == "--buffers-ms") {
      options.grid.buffer_ms = parse_f64_list(next(), "--buffers-ms");
    } else if (arg == "--sources") {
      options.grid.sources.clear();
      for (const std::uint64_t n : parse_u64_list(next(), "--sources")) {
        options.grid.sources.push_back(static_cast<std::size_t>(n));
      }
    } else if (arg == "--frames") {
      options.grid.frames_per_source =
          static_cast<std::size_t>(parse_u64(next(), "--frames"));
    } else if (arg == "--seed") {
      options.grid.seed = parse_u64(next(), "--seed");
    } else if (arg == "--deadline-sec") {
      options.limits.worker.deadline_seconds = parse_f64(next(), "--deadline-sec");
    } else if (arg == "--mem-mib") {
      options.limits.worker.memory_bytes = parse_u64(next(), "--mem-mib") << 20;
    } else if (arg == "--cpu-sec") {
      options.limits.worker.cpu_seconds = parse_u64(next(), "--cpu-sec");
    } else if (arg == "--attempts") {
      options.limits.max_attempts =
          static_cast<std::size_t>(parse_u64(next(), "--attempts"));
    } else if (arg == "--backoff-ms") {
      options.limits.backoff_seconds =
          static_cast<double>(parse_u64(next(), "--backoff-ms")) / 1000.0;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--durable") {
      options.durable = true;
    } else if (arg == "--hash-out") {
      hash_out = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--fault-rate") {
      options.faults.rate = parse_f64(next(), "--fault-rate");
    } else if (arg == "--fault-seed") {
      options.faults.seed = parse_u64(next(), "--fault-seed");
    } else if (arg == "--fault-kinds") {
      options.faults.crash = options.faults.hang = options.faults.oom = false;
      for (const std::string& kind : split_csv(next())) {
        if (kind == "crash") {
          options.faults.crash = true;
        } else if (kind == "hang") {
          options.faults.hang = true;
        } else if (kind == "oom") {
          options.faults.oom = true;
        } else {
          std::fprintf(stderr, "run_sweep: unknown fault kind: %s\n", kind.c_str());
          return 2;
        }
      }
    } else if (arg == "--poison") {
      options.faults.poison = parse_u64_list(next(), "--poison");
    } else {
      return usage();
    }
  }
  if (options.manifest_path.empty()) return usage();

  if (!quiet) {
    options.on_cell_settled = [](const vbr::sweep::CellRecord& record) {
      if (record.status == vbr::sweep::CellStatus::kDone) {
        std::fprintf(stderr, "cell %6" PRIu64 "  done        loss=%.3e\n",
                     record.cell_index, record.result.loss_rate);
      } else {
        std::fprintf(stderr, "cell %6" PRIu64 "  quarantined %s: %s\n",
                     record.cell_index,
                     vbr::sweep::failure_kind_name(record.failure.kind),
                     record.failure.message.c_str());
      }
    };
  }

  try {
    const vbr::sweep::SweepReport report = vbr::sweep::run_sweep(options);

    std::printf("cells        %zu\n", report.total_cells);
    std::printf("completed    %zu\n", report.completed);
    std::printf("quarantined  %zu\n", report.quarantined);
    std::printf("resumed      %zu\n", report.resumed_cells);
    std::printf("retries      %zu\n", report.retried_attempts);
    std::printf("results_hash %016" PRIx64 "\n", report.results_hash);
    for (const vbr::sweep::CellRecord& record : report.records) {
      if (record.status != vbr::sweep::CellStatus::kQuarantined) continue;
      std::printf("quarantine   cell %" PRIu64 " %s attempts=%" PRIu64
                  " signal=%d exit=%d rss_kib=%" PRIu64 ": %s\n",
                  record.cell_index, vbr::sweep::failure_kind_name(record.failure.kind),
                  record.failure.attempts, record.failure.term_signal,
                  record.failure.exit_code, record.failure.max_rss_kib,
                  record.failure.message.c_str());
    }

    if (!hash_out.empty()) {
      char line[32];
      std::snprintf(line, sizeof line, "%016" PRIx64 "\n", report.results_hash);
      vbr::write_file_atomic(hash_out, line);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_sweep: %s\n", e.what());
    return 1;
  }
  return 0;
}
