// stream_analyze: one-pass, bounded-memory analysis of a VBR trace of any
// length.
//
// Where analyze_trace loads the whole trace and runs the batch estimators,
// this tool streams the file through a chain of constant-memory sketches
// (src/vbr/stream/) and prints the same core exhibits: Table-2 summary
// moments, Fig.-4 CCDF tail quantiles, Fig.-7 short-lag autocorrelation,
// the Fig.-11 variance-time Hurst estimate and the Fig.-8 low-frequency
// spectral slope. Peak RSS stays bounded no matter how long the trace is.
//
// Usage:
//   ./stream_analyze <trace-file> [options]
//       Analyze an ASCII or binary trace (format is sniffed).
//       --block N        samples per read chunk        (default 65536)
//       --max-lag L      ACF lags tracked              (default 128)
//       --welch N        Welch segment size, pow2      (default 4096)
//       --max-rss-mib M  exit nonzero if peak RSS > M MiB
//   ./stream_analyze --generate <out-file> <samples> [options]
//       Write a binary model trace in bounded blocks (block-independent
//       sources, concatenated), suitable as large streaming-test input.
//       --seed S         master seed                   (default 1994)
//       --hurst H        Hurst parameter               (default 0.8)
//       --block N        frames per generated block    (default 131072)
//   ./stream_analyze --selftest
//       Quick streaming-vs-batch consistency check on a generated trace.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/model/vbr_source.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/stats/descriptive.hpp"
#include "vbr/stats/periodogram.hpp"
#include "vbr/stream/acf.hpp"
#include "vbr/stream/moments.hpp"
#include "vbr/stream/quantiles.hpp"
#include "vbr/stream/sink.hpp"
#include "vbr/stream/variance_time.hpp"
#include "vbr/stream/welch.hpp"
#include "vbr/trace/trace_stream.hpp"

namespace {

/// Peak resident set size in MiB, or a negative value where unsupported.
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB
#endif
#else
  return -1.0;
#endif
}

struct Options {
  std::string mode;  // "analyze", "generate", "selftest"
  std::string trace_path;
  std::string out_path;
  std::uint64_t samples = 0;
  std::size_t block = 0;  // 0: per-mode default
  std::size_t max_lag = 128;
  std::size_t welch_segment = 4096;
  double max_rss_mib = 0.0;  // 0: no limit
  std::uint64_t seed = 1994;
  double hurst = 0.8;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace-file> [--block N] [--max-lag L] [--welch N] "
               "[--max-rss-mib M]\n"
               "       %s --generate <out-file> <samples> [--seed S] "
               "[--hurst H] [--block N]\n"
               "       %s --selftest\n",
               argv0, argv0, argv0);
}

std::uint64_t parse_u64(const std::string& text, const char* what) {
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != text.size()) {
    throw vbr::InvalidArgument(std::string(what) + ": not a number: " + text);
  }
  return static_cast<std::uint64_t>(v);
}

double parse_double(const std::string& text, const char* what) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != text.size()) {
    throw vbr::InvalidArgument(std::string(what) + ": not a number: " + text);
  }
  return v;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) throw vbr::InvalidArgument(std::string(what) + " needs a value");
      return argv[++i];
    };
    if (arg == "--generate") {
      opt.mode = "generate";
    } else if (arg == "--selftest") {
      opt.mode = "selftest";
    } else if (arg == "--block") {
      opt.block = static_cast<std::size_t>(parse_u64(next("--block"), "--block"));
    } else if (arg == "--max-lag") {
      opt.max_lag = static_cast<std::size_t>(parse_u64(next("--max-lag"), "--max-lag"));
    } else if (arg == "--welch") {
      opt.welch_segment =
          static_cast<std::size_t>(parse_u64(next("--welch"), "--welch"));
    } else if (arg == "--max-rss-mib") {
      opt.max_rss_mib = parse_double(next("--max-rss-mib"), "--max-rss-mib");
    } else if (arg == "--seed") {
      opt.seed = parse_u64(next("--seed"), "--seed");
    } else if (arg == "--hurst") {
      opt.hurst = parse_double(next("--hurst"), "--hurst");
    } else if (!arg.empty() && arg[0] == '-') {
      throw vbr::InvalidArgument("unknown option: " + arg);
    } else {
      positional.push_back(arg);
    }
  }
  if (opt.mode == "generate") {
    if (positional.size() != 2) {
      throw vbr::InvalidArgument("--generate needs <out-file> <samples>");
    }
    opt.out_path = positional[0];
    opt.samples = parse_u64(positional[1], "<samples>");
    if (opt.samples == 0) throw vbr::InvalidArgument("<samples> must be positive");
    if (opt.block == 0) opt.block = std::size_t{1} << 17;
  } else if (opt.mode == "selftest") {
    if (!positional.empty()) throw vbr::InvalidArgument("--selftest takes no trace file");
  } else {
    if (positional.size() != 1) {
      throw vbr::InvalidArgument("expected exactly one trace file");
    }
    opt.mode = "analyze";
    opt.trace_path = positional[0];
    if (opt.block == 0) opt.block = std::size_t{1} << 16;
  }
  return opt;
}

vbr::model::VbrModelParams paper_params(double hurst) {
  // Table 2 / Section 4 parameterization of the Star Wars record.
  vbr::model::VbrModelParams params;
  params.marginal.mu_gamma = 27791.0;
  params.marginal.sigma_gamma = 6254.0;
  params.marginal.tail_slope = 12.0;
  params.hurst = hurst;
  return params;
}

int run_generate(const Options& opt) {
  const vbr::model::VbrVideoSourceModel model(paper_params(opt.hurst));
  vbr::trace::ChunkedTraceWriter writer(opt.out_path, opt.samples, 1.0 / 24.0,
                                        "bytes/frame");
  // Bounded memory: the FGN generator needs the whole block in memory, so a
  // long trace is written as independent model sources of `block` frames
  // each (fresh split Rng per block). LRD holds within blocks; across block
  // boundaries the sources are independent — fine for streaming/RSS tests.
  vbr::Rng master(opt.seed);
  std::uint64_t remaining = opt.samples;
  std::uint64_t written = 0;
  while (remaining > 0) {
    const auto take = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, opt.block));
    vbr::Rng rng = master.split();
    const auto block = model.generate(take, rng);
    writer.append(block);
    remaining -= take;
    written += take;
  }
  writer.finish();
  std::printf("wrote %" PRIu64 " samples to %s (block %zu, seed %" PRIu64
              ", H = %.2f)\n",
              written, opt.out_path.c_str(), opt.block, opt.seed, opt.hurst);
  return EXIT_SUCCESS;
}

int run_analyze(const Options& opt) {
  vbr::trace::ChunkedTraceReader reader(opt.trace_path);
  const auto& info = reader.info();
  std::printf("Streaming %s trace %s (dt %.6f s, unit %s)\n",
              info.binary ? "binary" : "ascii", opt.trace_path.c_str(),
              info.dt_seconds, info.unit.c_str());

  vbr::stream::StreamingMoments moments;
  vbr::stream::StreamingQuantiles quantiles;
  vbr::stream::StreamingAcf acf(opt.max_lag);
  vbr::stream::StreamingVarianceTime vt;
  vbr::stream::WelchOptions welch_opt;
  welch_opt.segment_size = opt.welch_segment;
  vbr::stream::StreamingWelchPeriodogram welch(welch_opt);
  auto sinks = vbr::stream::chain(moments, quantiles, acf, vt, welch);

  std::vector<double> block(opt.block);
  while (true) {
    const std::size_t got = reader.read(block);
    if (got == 0) break;
    sinks.push(std::span<const double>(block.data(), got));
  }
  if (moments.count() < 4) {
    std::fprintf(stderr, "trace too short for a streaming report (need >= 4)\n");
    return EXIT_FAILURE;
  }

  std::printf("\n== Summary statistics (cf. Table 2, one pass) ==\n");
  std::printf("  samples            %zu\n", moments.count());
  std::printf("  mean bandwidth     %.1f %s\n", moments.mean(), info.unit.c_str());
  std::printf("  std deviation      %.1f\n", moments.stddev());
  std::printf("  coef. of variation %.3f\n", moments.coefficient_of_variation());
  std::printf("  skewness           %.3f\n", moments.skewness());
  std::printf("  excess kurtosis    %.3f\n", moments.excess_kurtosis());
  std::printf("  min / max          %.0f / %.0f\n", moments.min(), moments.max());
  std::printf("  peak/mean          %.2f\n", moments.peak_to_mean());

  std::printf("\n== Marginal quantiles (cf. Fig. 4; sketch, %.1f%% rel. err.) ==\n",
              quantiles.options().relative_error * 100.0);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    std::printf("  q%-5.3f  %.0f\n", q, quantiles.quantile(q));
  }
  const auto curve = quantiles.ccdf_curve(6);
  std::printf("  log-log CCDF tail:");
  for (std::size_t i = 0; i < curve.x.size(); ++i) {
    std::printf(" (%.3g, %.2e)", curve.x[i], curve.p[i]);
  }
  std::printf("\n");

  const auto r = acf.acf();
  std::printf("\n== Autocorrelation (cf. Fig. 7, lags <= %zu) ==\n", acf.max_lag());
  std::printf("  r(1)=%.3f", r.size() > 1 ? r[1] : 0.0);
  for (const std::size_t k : {std::size_t{10}, std::size_t{50}, acf.max_lag()}) {
    if (k < r.size()) std::printf(" r(%zu)=%.3f", k, r[k]);
  }
  std::printf("\n");

  std::printf("\n== Variance-time Hurst (cf. Fig. 11) ==\n");
  const auto vt_result = vt.result();
  std::printf("  fit on %zu dyadic levels: beta = %.3f  -> H = %.3f (R^2 = %.3f)\n",
              vt_result.points.size(), vt_result.beta, vt_result.hurst,
              vt_result.fit.r_squared);

  std::printf("\n== Welch periodogram (cf. Fig. 8, %zu segments of %zu) ==\n",
              welch.segments(), welch.options().segment_size);
  if (welch.segments() > 0) {
    const auto pg = welch.result();
    const double alpha = vbr::stats::low_frequency_slope(pg, 0.05);
    std::printf("  low-frequency power law ~ w^-%.3f  -> H = %.3f\n", alpha,
                (1.0 + alpha) / 2.0);
  } else {
    std::printf("  (trace shorter than one segment)\n");
  }

  const double rss = peak_rss_mib();
  if (rss >= 0.0) std::printf("\npeak RSS: %.1f MiB\n", rss);
  if (opt.max_rss_mib > 0.0) {
    if (rss < 0.0) {
      std::fprintf(stderr, "--max-rss-mib: RSS measurement unsupported here\n");
      return EXIT_FAILURE;
    }
    if (rss > opt.max_rss_mib) {
      std::fprintf(stderr, "FAIL: peak RSS %.1f MiB exceeds limit %.1f MiB\n", rss,
                   opt.max_rss_mib);
      return EXIT_FAILURE;
    }
    std::printf("RSS within limit (%.1f MiB)\n", opt.max_rss_mib);
  }
  return EXIT_SUCCESS;
}

bool check_close(const char* what, double got, double want, double tol) {
  const double err = std::abs(got - want);
  const bool ok = err <= tol * std::max(1.0, std::abs(want));
  std::printf("  %-22s streaming %.6g vs batch %.6g  %s\n", what, got, want,
              ok ? "ok" : "MISMATCH");
  return ok;
}

int run_selftest(const Options& opt) {
  std::printf("selftest: streaming vs batch on a generated trace\n");
  const std::size_t n = std::size_t{1} << 15;
  const vbr::model::VbrVideoSourceModel model(paper_params(opt.hurst));
  vbr::Rng rng(opt.seed);
  const auto data = model.generate(n, rng);

  vbr::stream::StreamingMoments moments;
  vbr::stream::StreamingQuantiles quantiles;
  vbr::stream::StreamingAcf acf(64);
  auto sinks = vbr::stream::chain(moments, quantiles, acf);
  // Deliberately odd chunk size: results must not depend on chunking.
  const std::size_t chunk = 4097;
  for (std::size_t i = 0; i < data.size(); i += chunk) {
    const std::size_t take = std::min(chunk, data.size() - i);
    sinks.push(std::span<const double>(data.data() + i, take));
  }

  const auto batch = vbr::stats::batch_moments(data);
  const auto batch_acf = vbr::stats::autocorrelation(data, 64);
  const vbr::stats::Ecdf ecdf(data);
  const auto r = acf.acf();

  bool ok = true;
  ok &= check_close("mean", moments.mean(), batch.mean, 1e-9);
  ok &= check_close("variance", moments.variance(), batch.variance, 1e-9);
  ok &= check_close("skewness", moments.skewness(), batch.skewness, 1e-6);
  ok &= check_close("kurtosis", moments.excess_kurtosis(), batch.excess_kurtosis, 1e-6);
  ok &= check_close("acf r(1)", r[1], batch_acf[1], 1e-6);
  ok &= check_close("acf r(64)", r[64], batch_acf[64], 1e-6);
  ok &= check_close("median", quantiles.quantile(0.5), ecdf.quantile(0.5), 0.03);
  ok &= check_close("q0.99", quantiles.quantile(0.99), ecdf.quantile(0.99), 0.03);
  std::printf("selftest: %s\n", ok ? "PASS" : "FAIL");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_args(argc, argv);
    if (opt.mode == "generate") return run_generate(opt);
    if (opt.mode == "selftest") return run_selftest(opt);
    return run_analyze(opt);
  } catch (const vbr::InvalidArgument& e) {
    std::fprintf(stderr, "stream_analyze: %s\n", e.what());
    usage(argv[0]);
  } catch (const vbr::IoError& e) {
    std::fprintf(stderr, "stream_analyze: I/O error: %s\n", e.what());
  } catch (const vbr::Error& e) {
    std::fprintf(stderr, "stream_analyze: error: %s\n", e.what());
  }
  return EXIT_FAILURE;
}
