// run_campaign: crash-safe multi-source generation with checkpoint/resume.
//
// Drives vbr::run::run_campaign() from the command line: generates N
// independent model sources into one binary trace while a streaming
// statistics chain (moments + short-lag ACF) taps every sample, writing a
// checkpoint at each batch boundary. Kill it at any instant — SIGKILL
// included — and run the same command again with --resume: it continues from
// the checkpoint and finishes with a trace hash and sink state bit-identical
// to an uninterrupted run. The crash-soak harness (scripts/crash_soak.sh)
// does exactly that in a loop and compares the artifacts.
//
// Usage:
//   ./run_campaign --trace FILE [options]
//       --checkpoint FILE   checkpoint path (default: <trace>.ckpt)
//       --sources N         number of sources            (default 12)
//       --frames N          frames per source            (default 16384)
//       --seed S            master seed                  (default 1994)
//       --threads T         worker threads, 0 = auto     (default 0)
//       --every K           sources per checkpoint batch (default 2)
//       --resume            continue from the checkpoint if present
//       --durable           fsync trace blocks and checkpoints
//       --hash-out FILE     write the final trace hash (hex) atomically
//       --sink-out FILE     write the final sink state bytes atomically
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <sstream>
#include <string>

#include "vbr/common/atomic_file.hpp"
#include "vbr/common/error.hpp"
#include "vbr/run/campaign.hpp"
#include "vbr/stream/acf.hpp"
#include "vbr/stream/moments.hpp"
#include "vbr/stream/sink.hpp"

namespace {

/// The paper's Table 2/3 operating point (Star Wars fit).
vbr::model::VbrModelParams paper_params() {
  vbr::model::VbrModelParams params;
  params.marginal.mu_gamma = 27791.0;
  params.marginal.sigma_gamma = 6254.0;
  params.marginal.tail_slope = 12.0;
  params.hurst = 0.8;
  return params;
}

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "run_campaign: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

int usage() {
  std::fprintf(stderr,
               "usage: run_campaign --trace FILE [--checkpoint FILE] [--sources N]\n"
               "                    [--frames N] [--seed S] [--threads T] [--every K]\n"
               "                    [--resume] [--durable] [--hash-out FILE]\n"
               "                    [--sink-out FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  vbr::run::CampaignOptions options;
  options.plan.params = paper_params();
  options.plan.num_sources = 12;
  options.plan.frames_per_source = 16384;
  options.plan.seed = 1994;
  options.checkpoint_every_sources = 2;
  std::string hash_out;
  std::string sink_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "run_campaign: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      options.trace_path = next();
    } else if (arg == "--checkpoint") {
      options.checkpoint_path = next();
    } else if (arg == "--sources") {
      options.plan.num_sources = static_cast<std::size_t>(parse_u64(next(), "--sources"));
    } else if (arg == "--frames") {
      options.plan.frames_per_source =
          static_cast<std::size_t>(parse_u64(next(), "--frames"));
    } else if (arg == "--seed") {
      options.plan.seed = parse_u64(next(), "--seed");
    } else if (arg == "--threads") {
      options.plan.threads = static_cast<std::size_t>(parse_u64(next(), "--threads"));
    } else if (arg == "--every") {
      options.checkpoint_every_sources =
          static_cast<std::size_t>(parse_u64(next(), "--every"));
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--durable") {
      options.durable = true;
    } else if (arg == "--hash-out") {
      hash_out = next();
    } else if (arg == "--sink-out") {
      sink_out = next();
    } else {
      return usage();
    }
  }
  if (options.trace_path.empty()) return usage();
  if (options.checkpoint_path.empty()) {
    options.checkpoint_path = options.trace_path.string() + ".ckpt";
  }

  try {
    // The tap must be configured identically on every (re)invocation: its
    // state is restored from the checkpoint when resuming.
    vbr::stream::StreamingMoments moments;
    vbr::stream::StreamingAcf acf(64);
    vbr::stream::SinkChain tap = vbr::stream::chain(moments, acf);

    const vbr::run::CampaignResult result = vbr::run::run_campaign(options, &tap);

    std::printf("sources      %zu\n", result.stats.sources);
    std::printf("frames       %zu\n", result.stats.frames);
    std::printf("quarantined  %zu\n", result.stats.failures.size());
    std::printf("resumed      %s (at source %" PRIu64 ")\n",
                result.resumed ? "yes" : "no", result.resumed_at_source);
    std::printf("trace_hash   %016" PRIx64 "\n", result.trace_hash);
    std::printf("mean         %.6f\n", moments.mean());

    if (!hash_out.empty()) {
      char line[32];
      std::snprintf(line, sizeof line, "%016" PRIx64 "\n", result.trace_hash);
      vbr::write_file_atomic(hash_out, line);
    }
    if (!sink_out.empty()) {
      std::ostringstream state(std::ios::binary);
      tap.save(state);
      vbr::write_file_atomic(sink_out, state.str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_campaign: %s\n", e.what());
    return 1;
  }
  return 0;
}
