// generate_many: feed a statistical multiplexer from N independent model
// sources generated in parallel (Section 5.1 at engine scale).
//
// Unlike the paper's single-trace study — which multiplexes lagged copies
// of ONE trace — every source here is an independent realization of the
// four-parameter model, produced by the parallel generation engine with a
// per-thread-count-invariant seed derivation. The aggregate is then pushed
// through the exact fluid queue at a configurable utilization.
//
// Usage:
//   ./generate_many [sources] [frames] [H] [threads] [seed] [utilization]
//   ./generate_many --plan <file> [utilization]
// Defaults: 16 sources x 32768 frames, H = 0.8, all cores, seed 1994, 80%.
// The --plan form reads the key=value plan text of plan_text.hpp, including
// generator selection by zoo registry name (generator=paxson etc.).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "vbr/common/error.hpp"
#include "vbr/engine/engine.hpp"
#include "vbr/engine/plan_text.hpp"
#include "vbr/model/fgn_generator.hpp"
#include "vbr/net/fluid_queue.hpp"

int main(int argc, char** argv) {
  vbr::engine::GenerationPlan plan;
  double utilization = 0.8;
  if (argc > 1 && std::string(argv[1]) == "--plan") {
    if (argc < 3) {
      std::fprintf(stderr, "--plan needs a file argument\n");
      return EXIT_FAILURE;
    }
    std::ifstream in(argv[2]);
    if (!in) {
      std::fprintf(stderr, "cannot open plan file %s\n", argv[2]);
      return EXIT_FAILURE;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      plan = vbr::engine::parse_plan_text(text.str());
    } catch (const vbr::Error& e) {
      std::fprintf(stderr, "bad plan file %s: %s\n", argv[2], e.what());
      return EXIT_FAILURE;
    }
    if (argc > 3) utilization = std::stod(argv[3]);
    if (plan.frames_per_source == 0) plan.frames_per_source = 32768;
    // Fill the paper's Star Wars marginal for any parameter the file left
    // at the (invalid) zero default.
    if (plan.params.marginal.mu_gamma == 0.0) plan.params.marginal.mu_gamma = 27791.0;
    if (plan.params.marginal.sigma_gamma == 0.0) plan.params.marginal.sigma_gamma = 6254.0;
    if (plan.params.marginal.tail_slope == 0.0) plan.params.marginal.tail_slope = 12.0;
  } else {
    plan.num_sources = (argc > 1) ? std::stoul(argv[1]) : 16;
    plan.frames_per_source = (argc > 2) ? std::stoul(argv[2]) : 32768;
    plan.params.hurst = (argc > 3) ? std::stod(argv[3]) : 0.8;
    plan.threads = (argc > 4) ? std::stoul(argv[4]) : 0;
    plan.seed = (argc > 5) ? std::stoull(argv[5]) : 1994;
    if (argc > 6) utilization = std::stod(argv[6]);
    plan.params.marginal.mu_gamma = 27791.0;
    plan.params.marginal.sigma_gamma = 6254.0;
    plan.params.marginal.tail_slope = 12.0;
  }

  std::printf(
      "Generating %zu independent sources x %zu frames (H=%.2f, seed=%llu, %s)...\n",
      plan.num_sources, plan.frames_per_source, plan.params.hurst,
      static_cast<unsigned long long>(plan.seed),
      vbr::model::generator_backend_name(plan.resolved_backend()));

  const auto trace = vbr::engine::generate_sources(plan);
  const auto& stats = trace.stats;
  std::printf("  %zu threads: %.2fs wall, %.0f frames/s, %.2f MB/s generated\n",
              stats.threads_used, stats.wall_seconds, stats.frames_per_second(),
              stats.bytes_per_second() / 1e6);

  // Multiplex: per-frame aggregate arrival process at 24 frames/s.
  const auto aggregate = trace.aggregate();
  const double dt = 1.0 / 24.0;
  const double mean_rate =
      stats.bytes / (static_cast<double>(plan.frames_per_source) * dt);
  const double capacity = mean_rate / utilization;
  const double buffer = capacity * 0.05;  // ~50 ms of buffering
  const auto queue = vbr::net::run_fluid_queue(aggregate, dt, capacity, buffer);

  double peak = 0.0;
  for (const double v : aggregate) peak = std::max(peak, v);
  const double mean_frame =
      stats.bytes / static_cast<double>(plan.frames_per_source);
  std::printf("Multiplexed feed: mean %.0f bytes/frame, peak/mean %.2f\n", mean_frame,
              peak / mean_frame);
  std::printf("Fluid queue at %.0f%% utilization (C=%.2f MB/s, Q=%.0f KB):\n",
              100.0 * utilization, capacity / 1e6, buffer / 1e3);
  std::printf("  loss rate %.3e, max delay %.1f ms, mean delay %.2f ms\n",
              queue.loss_rate(), 1e3 * queue.max_delay_seconds(capacity),
              1e3 * queue.mean_delay_seconds(capacity));
  return EXIT_SUCCESS;
}
