// srd_pitfall: why short-range-dependent models under-provision networks.
//
// The paper's central warning: "The use of SRD models when inappropriate
// will result in overly optimistic estimates of performance, insufficient
// allocation of resources and difficulty in achieving the quality of
// service expected by network users." This example makes that concrete:
// fit a classical Markov-chain model and the paper's LRD model to the same
// trace, size a link from each model's synthetic traffic, then replay the
// REAL trace against both allocations and compare the loss actually
// suffered.
//
// Usage: ./srd_pitfall [buffer_seconds] [target_loss]
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "vbr/common/error.hpp"
#include "vbr/model/markov_source.hpp"
#include "vbr/model/starwars_surrogate.hpp"
#include "vbr/model/vbr_source.hpp"
#include "vbr/net/qc_analysis.hpp"

namespace {

double size_link(std::span<const double> frames, double delay, double target) {
  vbr::net::MuxExperiment experiment;
  experiment.sources = 1;
  const vbr::net::MuxWorkload workload(frames, experiment);
  return vbr::net::required_capacity_bps(workload, delay, target,
                                         vbr::net::QosMeasure::kOverallLoss);
}

double replay_loss(std::span<const double> frames, double capacity_bps, double delay) {
  vbr::net::MuxExperiment experiment;
  experiment.sources = 1;
  const vbr::net::MuxWorkload workload(frames, experiment);
  return workload.loss(capacity_bps, delay, vbr::net::QosMeasure::kOverallLoss);
}

double parse_double(const char* text, const char* what) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !std::isfinite(v)) {
    std::fprintf(stderr, "srd_pitfall: bad %s: %s\n", what, text);
    std::exit(2);
  }
  return v;
}

int run(int argc, char** argv) {
  const double delay = (argc > 1) ? parse_double(argv[1], "buffer_seconds") : 1.0;
  const double target = (argc > 2) ? parse_double(argv[2], "target_loss") : 1e-3;
  VBR_ENSURE(delay > 0.0, "buffer_seconds must be positive");
  VBR_ENSURE(target > 0.0 && target < 1.0, "target_loss must be in (0, 1)");

  std::printf("Provisioning experiment: buffer delay %.2f s, target loss %.0e\n\n", delay,
              target);
  vbr::model::SurrogateOptions options;
  options.frames = 65536;
  const auto trace = vbr::model::make_starwars_surrogate(options);
  const auto frames = trace.frames.samples();

  // Fit both models to the SAME measurements.
  const auto markov = vbr::model::MarkovChainSource::fit(frames, 16);
  const auto lrd = vbr::model::VbrVideoSourceModel::fit(frames);
  std::printf("Fitted models: 16-state Markov chain, and the paper's model (H = %.2f)\n",
              lrd.params().hurst);

  // Size the link from each model's own synthetic traffic.
  vbr::Rng rng(7);
  const auto markov_traffic = markov.generate(frames.size(), rng);
  const auto lrd_traffic = lrd.generate(frames.size(), rng);
  const double c_markov = size_link(markov_traffic, delay, target);
  const double c_lrd = size_link(lrd_traffic, delay, target);
  const double c_truth = size_link(frames, delay, target);

  std::printf("\n%-34s %10.2f Mb/s\n", "capacity sized from Markov model:",
              c_markov / 1e6);
  std::printf("%-34s %10.2f Mb/s\n", "capacity sized from LRD model:", c_lrd / 1e6);
  std::printf("%-34s %10.2f Mb/s\n", "capacity the real trace needs:", c_truth / 1e6);

  // Replay reality against each allocation.
  const double loss_markov = replay_loss(frames, c_markov, delay);
  const double loss_lrd = replay_loss(frames, c_lrd, delay);
  std::printf("\nReplaying the real trace:\n");
  std::printf("  on the Markov-sized link: loss %.2e (%.0fx the %.0e target)\n",
              loss_markov, loss_markov / target, target);
  std::printf("  on the LRD-sized link:    loss %.2e\n", loss_lrd);

  std::printf(
      "\nThe Markov fit matches the trace's marginals and lag-1 correlation, but\n"
      "its memory dies exponentially, so with a large buffer it predicts far\n"
      "less capacity than reality requires: the user sees %.0fx the promised\n"
      "loss. The LRD model is markedly less optimistic (%.1fx closer in excess\n"
      "loss) -- though, as the paper's Section 5.2 notes, even it inherits some\n"
      "optimism from unmodeled short-range structure and single-realization\n"
      "tail noise.\n",
      loss_markov / target, loss_markov / std::max(loss_lrd, target));
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "srd_pitfall: %s\n", e.what());
    return 1;
  }
}
