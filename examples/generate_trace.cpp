// generate_trace: command-line synthetic VBR video traffic generator.
//
// Produces a trace file from the paper's four-parameter model — the tool a
// downstream simulation study would actually use.
//
// Usage:
//   ./generate_trace out.trace [frames] [H] [mean] [stddev] [tail_slope] [seed]
// Defaults reproduce the paper's trace parameters:
//   171000 frames, H = 0.8, mu = 27791, sigma = 6254, m_T calibrated to the
//   published peak. Also writes out.trace.slices with the 30x slice trace.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "vbr/model/starwars_surrogate.hpp"
#include "vbr/model/vbr_source.hpp"
#include "vbr/trace/aggregate.hpp"
#include "vbr/trace/trace_io.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s out.trace [frames] [H] [mean] [stddev] [tail_slope] [seed]\n",
                 argv[0]);
    return EXIT_FAILURE;
  }
  const std::string out_path = argv[1];
  const std::size_t frames = (argc > 2) ? std::stoul(argv[2]) : 171000;
  vbr::model::VbrModelParams params;
  params.hurst = (argc > 3) ? std::stod(argv[3]) : 0.8;
  params.marginal.mu_gamma = (argc > 4) ? std::stod(argv[4]) : 27791.0;
  params.marginal.sigma_gamma = (argc > 5) ? std::stod(argv[5]) : 6254.0;
  params.marginal.tail_slope =
      (argc > 6) ? std::stod(argv[6])
                 : vbr::model::calibrate_tail_slope(params.marginal.mu_gamma,
                                                    params.marginal.sigma_gamma, 78459.0,
                                                    frames);
  const std::uint64_t seed = (argc > 7) ? std::stoull(argv[7]) : 1994;

  std::printf("Generating %zu frames: H=%.3f mu=%.0f sigma=%.0f m_T=%.2f seed=%llu\n",
              frames, params.hurst, params.marginal.mu_gamma, params.marginal.sigma_gamma,
              params.marginal.tail_slope, static_cast<unsigned long long>(seed));

  const vbr::model::VbrVideoSourceModel model(params);
  vbr::Rng rng(seed);
  const auto trace = model.generate_trace(frames, rng);
  vbr::trace::write_ascii(trace, out_path);

  const auto slices = vbr::trace::expand_to_slices(trace, 30, 0.36);
  vbr::trace::write_ascii(slices, out_path + ".slices");

  const auto s = trace.summary();
  std::printf("Wrote %s (+ .slices)\n", out_path.c_str());
  std::printf("  mean %.0f bytes/frame (%.2f Mb/s), CoV %.3f, peak/mean %.2f\n", s.mean,
              trace.mean_rate_bps() / 1e6, s.coefficient_of_variation, s.peak_to_mean);
  return EXIT_SUCCESS;
}
