// Quickstart: the complete model workflow in ~60 lines.
//
//   1. Obtain a VBR video trace (here: the built-in calibrated surrogate of
//      the paper's 2-hour "Star Wars" trace; use vbr::trace::read_ascii to
//      load your own).
//   2. Fit the paper's 4-parameter source model (mu_Gamma, sigma_Gamma,
//      m_T, H).
//   3. Generate synthetic traffic from the fitted model.
//   4. Check that the synthetic traffic reproduces the trace's statistics.
//
// Build & run:  ./quickstart [frames]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "vbr/model/starwars_surrogate.hpp"
#include "vbr/model/vbr_source.hpp"

int main(int argc, char** argv) {
  const std::size_t frames =
      (argc > 1) ? static_cast<std::size_t>(std::stoull(argv[1])) : 65536;

  // 1. A VBR video trace: per-frame byte counts at 24 fps.
  std::printf("Generating a %zu-frame surrogate of the paper's trace...\n", frames);
  vbr::model::SurrogateOptions options;
  options.frames = frames;
  const auto surrogate = vbr::model::make_starwars_surrogate(options);
  const auto trace_stats = surrogate.frames.summary();

  // 2. Fit the four-parameter model.
  const auto model = vbr::model::VbrVideoSourceModel::fit(surrogate.frames.samples());
  const auto& p = model.params();
  std::printf("\nFitted VBR video source model (Section 4):\n");
  std::printf("  mu_Gamma    = %8.0f bytes/frame\n", p.marginal.mu_gamma);
  std::printf("  sigma_Gamma = %8.0f bytes/frame\n", p.marginal.sigma_gamma);
  std::printf("  m_T         = %8.2f (Pareto tail slope)\n", p.marginal.tail_slope);
  std::printf("  H           = %8.3f (Hurst parameter)\n", p.hurst);

  // 3. Generate synthetic traffic from the fitted model.
  vbr::Rng rng(12345);
  const auto synthetic = model.generate_trace(frames, rng);
  const auto synth_stats = synthetic.summary();

  // 4. Compare.
  std::printf("\n%-28s %14s %14s\n", "statistic", "trace", "model output");
  std::printf("%-28s %14.0f %14.0f\n", "mean (bytes/frame)", trace_stats.mean,
              synth_stats.mean);
  std::printf("%-28s %14.0f %14.0f\n", "std dev (bytes/frame)", trace_stats.stddev,
              synth_stats.stddev);
  std::printf("%-28s %14.2f %14.2f\n", "coef. of variation",
              trace_stats.coefficient_of_variation, synth_stats.coefficient_of_variation);
  std::printf("%-28s %14.2f %14.2f\n", "peak/mean", trace_stats.peak_to_mean,
              synth_stats.peak_to_mean);
  std::printf("%-28s %14.2f %14.2f\n", "mean rate (Mb/s)",
              surrogate.frames.mean_rate_bps() / 1e6, synthetic.mean_rate_bps() / 1e6);
  std::printf("\nDone. See analyze_trace for the full Section-3 analysis.\n");
  return EXIT_SUCCESS;
}
