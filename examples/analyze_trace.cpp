// analyze_trace: the paper's full Section-3 statistical report for a VBR
// video trace.
//
// Usage:
//   ./analyze_trace                 analyze the built-in surrogate trace
//   ./analyze_trace trace.txt      analyze an ASCII trace (one frame size
//                                  per line; '#' headers optional)
//
// The report covers: Table-2 summary statistics, candidate marginal fits
// with tail comparison (Figs. 4-6), autocorrelation decay regimes (Fig. 7),
// low-frequency spectral slope (Fig. 8), and all Table-3 Hurst estimates
// (variance-time, R/S pox, R/S aggregated, R/S sweep, aggregated Whittle
// with 95% CI).
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "vbr/common/error.hpp"
#include "vbr/model/starwars_surrogate.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/stats/distributions.hpp"
#include "vbr/stats/gamma_pareto.hpp"
#include "vbr/stats/periodogram.hpp"
#include "vbr/stats/rs_analysis.hpp"
#include "vbr/stats/variance_time.hpp"
#include "vbr/stats/whittle.hpp"
#include "vbr/trace/trace_io.hpp"

namespace {

vbr::trace::TimeSeries load_trace(int argc, char** argv) {
  if (argc > 1) {
    std::printf("Loading trace from %s\n", argv[1]);
    return vbr::trace::read_ascii(argv[1]);
  }
  std::printf("No trace file given; generating the built-in surrogate (65536 frames).\n");
  vbr::model::SurrogateOptions options;
  options.frames = 65536;
  return vbr::model::make_starwars_surrogate(options).frames;
}

}  // namespace

int run(int argc, char** argv) {
  const auto trace = load_trace(argc, argv);
  const auto data = trace.samples();
  if (data.size() < 4096) {
    std::fprintf(stderr, "trace too short for a meaningful analysis (need >= 4096)\n");
    return EXIT_FAILURE;
  }

  // ---- Table 2: summary statistics --------------------------------------
  const auto s = trace.summary();
  std::printf("\n== Summary statistics (cf. Table 2) ==\n");
  std::printf("  samples            %zu\n", s.count);
  std::printf("  time unit          %.4f msec\n", trace.dt_seconds() * 1e3);
  std::printf("  mean bandwidth     %.1f %s   (%.2f Mb/s)\n", s.mean, trace.unit().c_str(),
              trace.mean_rate_bps() / 1e6);
  std::printf("  std deviation      %.1f\n", s.stddev);
  std::printf("  coef. of variation %.3f\n", s.coefficient_of_variation);
  std::printf("  min / max          %.0f / %.0f\n", s.min, s.max);
  std::printf("  peak/mean          %.2f\n", s.peak_to_mean);

  // ---- Marginal fits (Figs. 4-6) ----------------------------------------
  std::printf("\n== Marginal distribution fits (cf. Figs. 4-6) ==\n");
  const auto normal = vbr::stats::NormalDistribution::fit(data);
  const auto gamma = vbr::stats::GammaDistribution::fit(data);
  const auto lognormal = vbr::stats::LognormalDistribution::fit(data);
  const auto gp_params = vbr::stats::GammaParetoDistribution::fit(data);
  const vbr::stats::GammaParetoDistribution hybrid(gp_params);
  std::printf("  Gamma:        shape %.2f, rate %.3g\n", gamma.shape(), gamma.rate());
  std::printf("  Lognormal:    mu_log %.3f, sigma_log %.3f\n", lognormal.mu_log(),
              lognormal.sigma_log());
  std::printf("  Gamma/Pareto: mu %.0f, sigma %.0f, tail slope m_T %.2f, splice %.0f\n",
              gp_params.mu_gamma, gp_params.sigma_gamma, gp_params.tail_slope,
              hybrid.threshold());
  // Tail comparison at the observed peak: empirical CCDF there is ~1/n.
  const double far = s.max;
  std::printf("  CCDF at observed peak (%.0f): empirical ~%.1e\n", far,
              1.0 / static_cast<double>(s.count));
  std::printf("    %-14s %.3e\n", "Normal", normal.ccdf(far));
  std::printf("    %-14s %.3e\n", "Gamma", gamma.ccdf(far));
  std::printf("    %-14s %.3e\n", "Lognormal", lognormal.ccdf(far));
  std::printf("    %-14s %.3e   <- heavy tail tracks the data\n", "Gamma/Pareto",
              hybrid.ccdf(far));

  // ---- Autocorrelation (Fig. 7) ------------------------------------------
  std::printf("\n== Autocorrelation (cf. Fig. 7) ==\n");
  const std::size_t max_lag = std::min<std::size_t>(10000, data.size() / 4);
  const auto acf = vbr::stats::autocorrelation(data, max_lag);
  std::printf("  r(1)=%.3f r(10)=%.3f r(100)=%.3f r(1000)=%.3f r(%zu)=%.3f\n", acf[1],
              acf[10], acf[100], acf[std::min<std::size_t>(1000, max_lag)], max_lag,
              acf[max_lag]);
  const double rho_early = vbr::stats::fit_exponential_decay(acf, 1, 100);
  const double beta_late =
      vbr::stats::fit_hyperbolic_decay(acf, 200, std::min<std::size_t>(2000, max_lag));
  std::printf("  exponential fit (lags 1-100):    rho = %.4f per lag\n", rho_early);
  std::printf("  hyperbolic fit  (lags 200-2000): beta = %.3f  -> H = %.3f\n", beta_late,
              1.0 - beta_late / 2.0);

  // ---- Periodogram (Fig. 8) ----------------------------------------------
  const auto pg = vbr::stats::periodogram(data);
  const double alpha = vbr::stats::low_frequency_slope(pg, 0.05);
  std::printf("\n== Periodogram (cf. Fig. 8) ==\n");
  std::printf("  low-frequency power law ~ w^-%.3f  -> H = %.3f\n", alpha,
              (1.0 + alpha) / 2.0);

  // ---- Hurst estimates (Table 3) -----------------------------------------
  std::printf("\n== Hurst parameter estimates (cf. Table 3) ==\n");
  vbr::stats::VarianceTimeOptions vt_opt;
  vt_opt.fit_min_m = 100;
  const auto vt = vbr::stats::variance_time(data, vt_opt);
  std::printf("  %-24s %.3f  (beta = %.3f, R^2 = %.3f)\n", "Variance-Time", vt.hurst,
              vt.beta, vt.fit.r_squared);

  vbr::stats::RsOptions rs_opt;
  rs_opt.fit_min_lag = 200;
  const auto rs = vbr::stats::rs_analysis(data, rs_opt);
  std::printf("  %-24s %.3f  (%zu pox points)\n", "R/S Analysis", rs.hurst,
              rs.points.size());
  const auto rs_agg = vbr::stats::rs_analysis_aggregated(data, 10, rs_opt);
  std::printf("  %-24s %.3f\n", "R/S Aggregated (m=10)", rs_agg.hurst);

  const std::vector<std::size_t> lag_grid{20, 30, 40};
  const std::vector<std::size_t> part_grid{5, 10, 15};
  const auto sweep = vbr::stats::rs_sweep(data, lag_grid, part_grid, rs_opt);
  std::printf("  %-24s %.2f-%.2f\n", "R/S with n, M varied", sweep.hurst_min,
              sweep.hurst_max);

  // Whittle on the log series, aggregated (the paper's procedure).
  std::vector<double> logs(data.begin(), data.end());
  for (auto& v : logs) v = std::log(v);
  const std::size_t m = std::max<std::size_t>(1, data.size() / 300);
  const std::vector<std::size_t> levels{m};
  const auto whittle = vbr::stats::whittle_aggregated(logs, levels);
  std::printf("  %-24s %.3f +- %.3f  (95%% CI, m = %zu)\n", "Whittle estimate",
              whittle[0].result.hurst, 1.96 * whittle[0].result.stderr_hurst, m);

  std::printf("\nInterpretation: H in (0.5, 1) across methods indicates long-range\n");
  std::printf("dependence; H ~ 0.8 matches the paper's finding for action-movie video.\n");
  return EXIT_SUCCESS;
}

int main(int argc, char** argv) {
  // A bad input path (or a corrupt trace) is an expected user error, not a
  // programming error: report it and exit cleanly instead of aborting.
  try {
    return run(argc, argv);
  } catch (const vbr::IoError& e) {
    std::fprintf(stderr, "analyze_trace: I/O error: %s\n", e.what());
  } catch (const vbr::Error& e) {
    std::fprintf(stderr, "analyze_trace: error: %s\n", e.what());
  }
  return EXIT_FAILURE;
}
