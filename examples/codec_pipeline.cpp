// codec_pipeline: end-to-end demonstration of the intraframe coder
// substrate (the Table 1 pipeline): render a scene-structured synthetic
// movie, push every frame through DCT -> quantize -> zig-zag -> RLE ->
// Huffman, and emit the resulting VBR trace with its statistics.
//
// Usage: ./codec_pipeline [frames] [width] [height] [out.trace]
//   defaults: 480 frames of 128x128 (use 504x480 for the paper's geometry;
//   it is ~15x slower per frame).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "vbr/codec/intraframe_coder.hpp"
#include "vbr/codec/synthetic_movie.hpp"
#include "vbr/common/error.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/trace/time_series.hpp"
#include "vbr/trace/trace_io.hpp"

namespace {

std::size_t parse_size(const char* text, const char* what) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "codec_pipeline: bad %s: %s\n", what, text);
    std::exit(2);
  }
  return static_cast<std::size_t>(v);
}

int run(int argc, char** argv) {
  const std::size_t frames = (argc > 1) ? parse_size(argv[1], "frame count") : 480;
  const std::size_t width = (argc > 2) ? parse_size(argv[2], "width") : 128;
  const std::size_t height = (argc > 3) ? parse_size(argv[3], "height") : 128;
  VBR_ENSURE(frames >= 1 && frames <= (std::size_t{1} << 20),
             "frame count must be in [1, 2^20]");
  VBR_ENSURE(width >= 8 && width <= 8192, "width must be in [8, 8192]");
  VBR_ENSURE(height >= 8 && height <= 8192, "height must be in [8, 8192]");

  std::printf("Rendering a %zu-frame synthetic movie at %zux%zu...\n", frames, width,
              height);
  vbr::codec::MovieConfig movie_config;
  movie_config.width = width;
  movie_config.height = height;
  const vbr::codec::SyntheticMovie movie(movie_config, frames);
  std::printf("  %zu scenes (mean shot length %.1f s at 24 fps)\n", movie.scenes().size(),
              static_cast<double>(frames) / static_cast<double>(movie.scenes().size()) /
                  24.0);

  // Train the entropy coder on a sample of the material (two-pass coding).
  vbr::codec::CoderConfig coder_config;  // fixed quantizer step, 30 slices
  vbr::codec::IntraframeCoder coder(coder_config);
  std::vector<vbr::codec::Frame> training;
  for (std::size_t f = 0; f < frames; f += std::max<std::size_t>(1, frames / 8)) {
    training.push_back(movie.frame(f));
  }
  coder.train(training);

  // Code the movie; collect the per-frame byte counts (the VBR trace).
  std::vector<double> bytes_per_frame;
  bytes_per_frame.reserve(frames);
  double total_ratio = 0.0;
  double min_psnr = 1e9;
  for (std::size_t f = 0; f < frames; ++f) {
    const auto frame = movie.frame(f);
    const auto encoded = coder.encode(frame);
    bytes_per_frame.push_back(static_cast<double>(encoded.total_bytes()));
    total_ratio += vbr::codec::IntraframeCoder::compression_ratio(frame, encoded);
    if (f % 97 == 0) {  // spot-check fidelity via full decode
      min_psnr = std::min(min_psnr, vbr::codec::psnr(frame, coder.decode(encoded)));
    }
  }

  const vbr::trace::TimeSeries trace(bytes_per_frame, 1.0 / 24.0, "bytes/frame");
  const auto s = trace.summary();
  std::printf("\nCoded VBR trace (cf. Tables 1-2):\n");
  std::printf("  frames              %zu\n", s.count);
  std::printf("  mean bandwidth      %.0f bytes/frame  (%.3f Mb/s)\n", s.mean,
              trace.mean_rate_bps() / 1e6);
  std::printf("  std deviation       %.0f bytes/frame\n", s.stddev);
  std::printf("  coef. of variation  %.3f\n", s.coefficient_of_variation);
  std::printf("  peak/mean           %.2f\n", s.peak_to_mean);
  std::printf("  avg compression     %.2f : 1\n", total_ratio / static_cast<double>(frames));
  std::printf("  decoded PSNR        >= %.1f dB (spot checks)\n", min_psnr);

  const auto acf = vbr::stats::autocorrelation(bytes_per_frame,
                                               std::min<std::size_t>(100, frames / 4));
  std::printf("  trace ACF           r(1)=%.2f r(10)=%.2f r(%zu)=%.2f  (scene persistence)\n",
              acf[1], acf[10], acf.size() - 1, acf.back());

  if (argc > 4) {
    vbr::trace::write_ascii(trace, argv[4]);
    std::printf("\nTrace written to %s\n", argv[4]);
  }
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "codec_pipeline: %s\n", e.what());
    return 1;
  }
}
