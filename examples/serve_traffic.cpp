// serve_traffic: the ROADMAP item 3 shape — one long-lived driver serving
// endless VBR traffic from N lightweight streaming sources, with crash-safe
// checkpointing, a self-enforced RSS ceiling, and (PR 10) an overload
// governor: budgeted admission, per-stream fault isolation, and a
// deterministic graceful-degradation ladder.
//
//   serve_traffic [options]
//       --streams N          concurrent streams              (default 4)
//       --samples N          samples to serve per stream     (default 4096)
//       --block N            samples per stream per round    (default 64)
//       --seed S             master seed                     (default 42)
//       --generator NAME     hosking | paxson | onoff        (default hosking)
//       --variant NAME       full | gaussian | iid           (default gaussian)
//       --hurst H            Hurst parameter                 (default 0.8)
//       --mean X             marginal mean (bytes/frame)     (default 27791)
//       --stddev X           marginal stddev                 (default 6254)
//       --tail-slope X       Pareto tail slope m_T           (default 12)
//       --hosking-horizon N  hosking predictor horizon       (default 64)
//       --paxson-window N    paxson synthesis window         (default 4096)
//       --paxson-overlap N   paxson stitch overlap           (default 512)
//       --threads N          worker threads (0 = auto; never affects output)
//       --queue-capacity X   multiplexer service rate, bytes/sec (0 = no queue)
//       --queue-buffer X     multiplexer buffer, bytes
//       --checkpoint FILE    VBRSRVC1 checkpoint path (written atomically)
//       --checkpoint-every N rounds between checkpoint saves (default 1)
//       --resume             continue from FILE if it exists
//       --max-rss-mib M      RSS ceiling: breach checkpoints, then exits 3
//       --hash-out FILE      write results_hash (hex) atomically
//       --json               print the summary as one JSON object
//
//   Overload governor (any of these flags attaches the governor; a governed
//   resume must repeat the same governor flags):
//       --memory-budget-mib M   admission gate: refuse the fleet (exit 5)
//                               if the projected stream state exceeds M MiB
//       --cpu-budget-sps X      admission gate on projected samples/sec
//       --stream-fault SPEC     seeded per-stream fault, repeatable;
//                               SPEC = STREAM@SAMPLE:transient|permanent[:TIMES]
//       --pressure SPEC         seeded pressure transition, repeatable;
//                               SPEC = EPOCH:LEVEL (levels 0..3)
//       --shed-fraction F       fraction of streams shed at level 1 (default 0.25)
//       --degraded-block N      block cap at level 2 (default: half the block)
//       --retry-attempts N      TransientError retry budget (default 3)
//       --retry-backoff S       base backoff seconds (default 0)
//       --snapshot-every-round  snapshot all streams (retries cover
//                               unscheduled transients too)
//       --rss-probe             drive the ladder from live RSS against
//                               --max-rss-mib (70/80/90% thresholds);
//                               mutually exclusive with --pressure
//       --inject-io-fault N     throw vbr::IoError after round N (drills the
//                               checkpoint-then-exit-4 path; test hook)
//
// Exit codes: 0 success, 1 runtime error (clean vbr::Error — hostile inputs
// never abort), 2 usage error, 3 RSS ceiling exceeded (state checkpointed
// first when --checkpoint is set, so --resume always works), 4 mid-run
// failure with state checkpointed (resume with --resume), 5 admission
// rejected (structured decision printed, nothing built).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "vbr/common/atomic_file.hpp"
#include "vbr/common/error.hpp"
#include "vbr/model/fgn_generator.hpp"
#include "vbr/service/governor.hpp"
#include "vbr/service/service_checkpoint.hpp"
#include "vbr/service/traffic_service.hpp"

namespace {

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "serve_traffic: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

double parse_f64(const char* text, const char* flag) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "serve_traffic: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return v;
}

/// Peak resident set (VmHWM) in MiB from /proc/self/status; 0 if unreadable.
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

/// Current resident set (VmRSS) in MiB — the live pressure-probe reading.
double current_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

/// STREAM@SAMPLE:transient|permanent[:TIMES]
vbr::service::ScheduledStreamFault parse_stream_fault(const std::string& spec) {
  const auto at = spec.find('@');
  const auto colon = spec.find(':', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || colon == std::string::npos) {
    std::fprintf(stderr, "serve_traffic: bad --stream-fault spec: %s\n", spec.c_str());
    std::exit(2);
  }
  vbr::service::ScheduledStreamFault fault;
  fault.stream =
      static_cast<std::size_t>(parse_u64(spec.substr(0, at).c_str(), "--stream-fault"));
  fault.at_sample = parse_u64(spec.substr(at + 1, colon - at - 1).c_str(), "--stream-fault");
  std::string kind = spec.substr(colon + 1);
  const auto times_colon = kind.find(':');
  if (times_colon != std::string::npos) {
    fault.times = parse_u64(kind.substr(times_colon + 1).c_str(), "--stream-fault");
    kind.resize(times_colon);
  }
  if (kind == "transient") {
    fault.kind = vbr::run::FaultKind::kTransient;
  } else if (kind == "permanent") {
    fault.kind = vbr::run::FaultKind::kPermanent;
  } else {
    std::fprintf(stderr, "serve_traffic: fault kind must be transient or permanent: %s\n",
                 spec.c_str());
    std::exit(2);
  }
  return fault;
}

/// EPOCH:LEVEL
vbr::service::PressureEvent parse_pressure(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "serve_traffic: bad --pressure spec: %s\n", spec.c_str());
    std::exit(2);
  }
  vbr::service::PressureEvent event;
  event.at_epoch = parse_u64(spec.substr(0, colon).c_str(), "--pressure");
  event.level = static_cast<int>(parse_u64(spec.substr(colon + 1).c_str(), "--pressure"));
  return event;
}

/// Unwinds the serve loop at a consistent round boundary when the RSS
/// ceiling is breached, so the shared rescue path below can checkpoint.
struct RssCeilingBreach final : std::exception {
  const char* what() const noexcept override { return "rss ceiling exceeded"; }
};

/// JSON string payload hygiene for error messages we print.
std::string json_safe(std::string s) {
  for (char& c : s) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) c = ' ';
  }
  return s;
}

void report_failures(const vbr::service::OverloadGovernor& governor) {
  for (const vbr::service::StreamFailure& failure : governor.failures()) {
    std::fprintf(stderr,
                 "serve_traffic: stream %zu quarantined (%s) at sample %" PRIu64
                 " after %u attempt(s): %s\n",
                 failure.stream, failure.transient ? "transient, retries exhausted" : "permanent",
                 failure.position, failure.attempts, failure.error.c_str());
  }
}

void print_admission(const vbr::service::AdmissionDecision& decision, bool json) {
  if (json) {
    std::printf("{\"admission\": {\"outcome\": \"%s\", \"requested_streams\": %zu, "
                "\"projected_memory_bytes\": %" PRIu64 ", \"memory_budget_bytes\": %" PRIu64
                ", \"projected_samples_per_second\": %.17g, "
                "\"cpu_budget_samples_per_second\": %.17g, \"reason\": \"%s\"}}\n",
                vbr::service::admission_outcome_name(decision.outcome), decision.requested_streams,
                decision.projected_memory_bytes, decision.memory_budget_bytes,
                decision.projected_samples_per_second, decision.cpu_budget_samples_per_second,
                json_safe(decision.reason).c_str());
  } else {
    std::fprintf(stderr, "serve_traffic: admission %s: %s\n",
                 vbr::service::admission_outcome_name(decision.outcome), decision.reason.c_str());
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: serve_traffic [--streams N] [--samples N] [--block N] [--seed S]\n"
               "                     [--generator hosking|paxson|onoff]\n"
               "                     [--variant full|gaussian|iid] [--hurst H]\n"
               "                     [--mean X] [--stddev X] [--tail-slope X]\n"
               "                     [--hosking-horizon N] [--paxson-window N]\n"
               "                     [--paxson-overlap N] [--threads N]\n"
               "                     [--queue-capacity X] [--queue-buffer X]\n"
               "                     [--checkpoint FILE] [--checkpoint-every N] [--resume]\n"
               "                     [--max-rss-mib M] [--hash-out FILE] [--json]\n"
               "                     [--memory-budget-mib M] [--cpu-budget-sps X]\n"
               "                     [--stream-fault S@P:transient|permanent[:T]]...\n"
               "                     [--pressure EPOCH:LEVEL]... [--shed-fraction F]\n"
               "                     [--degraded-block N] [--retry-attempts N]\n"
               "                     [--retry-backoff S] [--snapshot-every-round]\n"
               "                     [--rss-probe] [--inject-io-fault N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  vbr::service::ServiceConfig config;
  config.num_streams = 4;
  config.seed = 42;
  config.variant = vbr::model::ModelVariant::kGaussianFarima;
  config.backend = vbr::model::GeneratorBackend::kHosking;
  config.params.hurst = 0.8;
  config.params.marginal.mu_gamma = 27791.0;
  config.params.marginal.sigma_gamma = 6254.0;
  config.params.marginal.tail_slope = 12.0;

  std::uint64_t samples = 4096;
  std::uint64_t block = 64;
  std::uint64_t checkpoint_every = 1;
  std::string checkpoint_path;
  std::string hash_out;
  bool resume = false;
  bool json = false;
  double max_rss_mib = 0.0;

  vbr::service::GovernorConfig gov_config;
  bool governed = false;
  bool rss_probe = false;
  std::uint64_t inject_io_fault_round = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve_traffic: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--streams") {
      config.num_streams = static_cast<std::size_t>(parse_u64(next(), "--streams"));
    } else if (arg == "--samples") {
      samples = parse_u64(next(), "--samples");
    } else if (arg == "--block") {
      block = parse_u64(next(), "--block");
    } else if (arg == "--seed") {
      config.seed = parse_u64(next(), "--seed");
    } else if (arg == "--generator") {
      try {
        config.backend = vbr::model::generator_backend_from_name(next());
      } catch (const vbr::Error& e) {
        std::fprintf(stderr, "serve_traffic: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--variant") {
      const std::string name = next();
      if (name == "full") {
        config.variant = vbr::model::ModelVariant::kFull;
      } else if (name == "gaussian") {
        config.variant = vbr::model::ModelVariant::kGaussianFarima;
      } else if (name == "iid") {
        config.variant = vbr::model::ModelVariant::kIidGammaPareto;
      } else {
        std::fprintf(stderr, "serve_traffic: unknown variant: %s\n", name.c_str());
        return 2;
      }
    } else if (arg == "--hurst") {
      config.params.hurst = parse_f64(next(), "--hurst");
    } else if (arg == "--mean") {
      config.params.marginal.mu_gamma = parse_f64(next(), "--mean");
    } else if (arg == "--stddev") {
      config.params.marginal.sigma_gamma = parse_f64(next(), "--stddev");
    } else if (arg == "--tail-slope") {
      config.params.marginal.tail_slope = parse_f64(next(), "--tail-slope");
    } else if (arg == "--hosking-horizon") {
      config.tuning.hosking_horizon =
          static_cast<std::size_t>(parse_u64(next(), "--hosking-horizon"));
    } else if (arg == "--paxson-window") {
      config.tuning.paxson_window =
          static_cast<std::size_t>(parse_u64(next(), "--paxson-window"));
    } else if (arg == "--paxson-overlap") {
      config.tuning.paxson_overlap =
          static_cast<std::size_t>(parse_u64(next(), "--paxson-overlap"));
    } else if (arg == "--threads") {
      config.threads = static_cast<std::size_t>(parse_u64(next(), "--threads"));
    } else if (arg == "--queue-capacity") {
      config.queue_capacity_bytes_per_sec = parse_f64(next(), "--queue-capacity");
    } else if (arg == "--queue-buffer") {
      config.queue_buffer_bytes = parse_f64(next(), "--queue-buffer");
    } else if (arg == "--checkpoint") {
      checkpoint_path = next();
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = parse_u64(next(), "--checkpoint-every");
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--max-rss-mib") {
      max_rss_mib = parse_f64(next(), "--max-rss-mib");
    } else if (arg == "--hash-out") {
      hash_out = next();
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--memory-budget-mib") {
      gov_config.budget.memory_bytes =
          static_cast<std::uint64_t>(parse_f64(next(), "--memory-budget-mib") * 1024.0 * 1024.0);
      governed = true;
    } else if (arg == "--cpu-budget-sps") {
      gov_config.budget.cpu_samples_per_second = parse_f64(next(), "--cpu-budget-sps");
      governed = true;
    } else if (arg == "--stream-fault") {
      gov_config.stream_faults.push_back(parse_stream_fault(next()));
      governed = true;
    } else if (arg == "--pressure") {
      gov_config.pressure_schedule.push_back(parse_pressure(next()));
      governed = true;
    } else if (arg == "--shed-fraction") {
      gov_config.shed_fraction = parse_f64(next(), "--shed-fraction");
      governed = true;
    } else if (arg == "--degraded-block") {
      gov_config.degraded_block = static_cast<std::size_t>(parse_u64(next(), "--degraded-block"));
      governed = true;
    } else if (arg == "--retry-attempts") {
      gov_config.policy.max_attempts = static_cast<std::size_t>(parse_u64(next(), "--retry-attempts"));
      governed = true;
    } else if (arg == "--retry-backoff") {
      gov_config.policy.backoff_seconds = parse_f64(next(), "--retry-backoff");
      governed = true;
    } else if (arg == "--snapshot-every-round") {
      gov_config.snapshot_every_round = true;
      governed = true;
    } else if (arg == "--rss-probe") {
      rss_probe = true;
      governed = true;
    } else if (arg == "--inject-io-fault") {
      inject_io_fault_round = parse_u64(next(), "--inject-io-fault");
    } else {
      std::fprintf(stderr, "serve_traffic: unknown option: %s\n", arg.c_str());
      return usage();
    }
  }
  if (block == 0 || samples == 0 || checkpoint_every == 0) {
    std::fprintf(stderr, "serve_traffic: --samples, --block, --checkpoint-every must be > 0\n");
    return 2;
  }
  if (rss_probe && !gov_config.pressure_schedule.empty()) {
    std::fprintf(stderr, "serve_traffic: --rss-probe and --pressure are mutually exclusive\n");
    return 2;
  }
  if (rss_probe && max_rss_mib <= 0.0) {
    std::fprintf(stderr, "serve_traffic: --rss-probe needs --max-rss-mib\n");
    return 2;
  }

  // Budgeted admission: refuse the fleet *before* the memory-proportional
  // build, as a structured decision rather than an exception or an OOM.
  if (governed) {
    try {
      const vbr::service::AdmissionDecision decision =
          vbr::service::admit_fleet(config, gov_config.budget);
      if (!decision.admitted()) {
        print_admission(decision, json);
        return 5;
      }
    } catch (const vbr::Error& e) {
      std::fprintf(stderr, "serve_traffic: %s\n", e.what());
      return 1;
    }
  }

  std::unique_ptr<vbr::service::TrafficService> service;
  std::unique_ptr<vbr::service::OverloadGovernor> governor;
  try {
    service = std::make_unique<vbr::service::TrafficService>(config);
    if (governed) {
      if (rss_probe) {
        const double ceiling = max_rss_mib;
        gov_config.pressure_probe = [ceiling]() {
          const double rss = current_rss_mib();
          if (rss >= 0.9 * ceiling) return 3;
          if (rss >= 0.8 * ceiling) return 2;
          if (rss >= 0.7 * ceiling) return 1;
          return 0;
        };
      }
      governor = std::make_unique<vbr::service::OverloadGovernor>(*service, gov_config);
    }
    if (resume && !checkpoint_path.empty() && std::filesystem::exists(checkpoint_path)) {
      vbr::service::load_service_checkpoint(checkpoint_path, *service, governor.get());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_traffic: %s\n", e.what());
    return 1;
  }

  // Serve. Any failure past this point leaves a consistent round boundary
  // behind, so the rescue path checkpoints before exiting — a breached RSS
  // ceiling or a mid-run I/O fault is always resumable, never a dead run.
  try {
    if (governor != nullptr) {
      // Governed runs count progress in governed epochs (the checkpoint
      // persists the cursor, so a resumed run continues exactly).
      std::uint64_t iteration = 0;
      while (governor->epoch() < samples) {
        const std::uint64_t step = std::min<std::uint64_t>(block, samples - governor->epoch());
        governor->advance_round(static_cast<std::size_t>(step));
        ++iteration;
        if (inject_io_fault_round != 0 && iteration == inject_io_fault_round) {
          throw vbr::IoError("injected sink I/O fault after round " + std::to_string(iteration));
        }
        const bool checkpoint_due =
            iteration % checkpoint_every == 0 || governor->epoch() >= samples;
        if (!checkpoint_path.empty() && (checkpoint_due || governor->checkpoint_requested())) {
          vbr::service::save_service_checkpoint(checkpoint_path, *service, governor.get());
          governor->acknowledge_checkpoint();
        }
        if (max_rss_mib > 0.0 && !rss_probe && peak_rss_mib() > max_rss_mib) {
          throw RssCeilingBreach();
        }
      }
    } else {
      // Ungoverned: samples-per-stream is rounds * block, exactly as before.
      const auto target_rounds = static_cast<std::uint64_t>((samples + block - 1) / block);
      while (service->rounds() < target_rounds) {
        service->advance_round(static_cast<std::size_t>(block));
        if (inject_io_fault_round != 0 && service->rounds() == inject_io_fault_round) {
          throw vbr::IoError("injected sink I/O fault after round " +
                             std::to_string(service->rounds()));
        }
        if (!checkpoint_path.empty() && (service->rounds() % checkpoint_every == 0 ||
                                         service->rounds() == target_rounds)) {
          vbr::service::save_service_checkpoint(checkpoint_path, *service);
        }
        if (max_rss_mib > 0.0 && peak_rss_mib() > max_rss_mib) {
          throw RssCeilingBreach();
        }
      }
    }
  } catch (const std::exception& e) {
    const bool rss_breach = dynamic_cast<const RssCeilingBreach*>(&e) != nullptr;
    int exit_code = 1;
    if (rss_breach) {
      std::fprintf(stderr, "serve_traffic: peak RSS %.1f MiB exceeds ceiling %.1f MiB\n",
                   peak_rss_mib(), max_rss_mib);
      exit_code = 3;
    } else {
      std::fprintf(stderr, "serve_traffic: %s\n", e.what());
    }
    if (governor != nullptr) report_failures(*governor);
    if (!checkpoint_path.empty()) {
      try {
        vbr::service::save_service_checkpoint(checkpoint_path, *service, governor.get());
        std::fprintf(stderr, "serve_traffic: state checkpointed to %s; rerun with --resume\n",
                     checkpoint_path.c_str());
        if (!rss_breach) exit_code = 4;
      } catch (const std::exception& save_error) {
        // The rescue save is best-effort: report, keep the original exit code.
        std::fprintf(stderr, "serve_traffic: rescue checkpoint failed: %s\n", save_error.what());
      }
    }
    return exit_code;
  }

  // Summary.
  try {
    const double rss = peak_rss_mib();
    if (!hash_out.empty()) {
      char line[32];
      std::snprintf(line, sizeof line, "%016" PRIx64 "\n", service->results_hash());
      vbr::write_file_atomic(hash_out, line);
    }

    if (governor != nullptr) report_failures(*governor);
    if (json) {
      std::printf("{\"streams\": %zu, \"samples_per_stream\": %" PRIu64 ", \"rounds\": %" PRIu64
                  ", \"total_samples\": %" PRIu64 ", \"results_hash\": \"%016" PRIx64
                  "\", \"total_bytes\": %.17g, \"peak_rss_mib\": %.1f",
                  config.num_streams, samples, service->rounds(), service->total_samples(),
                  service->results_hash(), service->total_bytes(), rss);
      if (governor != nullptr) {
        std::printf(", \"governed\": true, \"level\": %d, \"shed_streams\": %zu"
                    ", \"quarantined_streams\": %zu, \"transient_retries\": %" PRIu64
                    ", \"stream_failures\": [",
                    governor->level(), governor->shed_streams(), governor->quarantined_streams(),
                    governor->transient_retries());
        bool first = true;
        for (const vbr::service::StreamFailure& failure : governor->failures()) {
          std::printf("%s{\"stream\": %zu, \"kind\": \"%s\", \"position\": %" PRIu64
                      ", \"attempts\": %u, \"error\": \"%s\"}",
                      first ? "" : ", ", failure.stream,
                      failure.transient ? "transient" : "permanent", failure.position,
                      failure.attempts, json_safe(failure.error).c_str());
          first = false;
        }
        std::printf("]");
      }
      std::printf("}\n");
    } else {
      std::printf("streams        %zu\n", config.num_streams);
      std::printf("samples/stream %" PRIu64 "\n", samples);
      std::printf("rounds         %" PRIu64 "\n", service->rounds());
      std::printf("total_samples  %" PRIu64 "\n", service->total_samples());
      std::printf("total_bytes    %.6g\n", service->total_bytes());
      std::printf("results_hash   %016" PRIx64 "\n", service->results_hash());
      if (service->queue() != nullptr) {
        std::printf("queue_lost     %.6g\n", service->queue()->lost_bytes());
        std::printf("queue_max      %.6g\n", service->queue()->max_queue_bytes());
      }
      if (governor != nullptr) {
        std::printf("governed       level=%d shed=%zu quarantined=%zu retries=%" PRIu64 "\n",
                    governor->level(), governor->shed_streams(), governor->quarantined_streams(),
                    governor->transient_retries());
      }
      std::printf("peak_rss_mib   %.1f\n", rss);
    }

    if (max_rss_mib > 0.0 && rss > max_rss_mib) {
      std::fprintf(stderr, "serve_traffic: peak RSS %.1f MiB exceeds ceiling %.1f MiB\n", rss,
                   max_rss_mib);
      if (!checkpoint_path.empty()) {
        vbr::service::save_service_checkpoint(checkpoint_path, *service, governor.get());
        std::fprintf(stderr, "serve_traffic: state checkpointed to %s\n", checkpoint_path.c_str());
      }
      return 3;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_traffic: %s\n", e.what());
    return 1;
  }
  return 0;
}
