// serve_traffic: the ROADMAP item 3 shape — one long-lived driver serving
// endless VBR traffic from N lightweight streaming sources, with crash-safe
// checkpointing and a self-enforced RSS ceiling.
//
//   serve_traffic [options]
//       --streams N          concurrent streams              (default 4)
//       --samples N          samples to serve per stream     (default 4096)
//       --block N            samples per stream per round    (default 64)
//       --seed S             master seed                     (default 42)
//       --generator NAME     hosking | paxson | onoff        (default hosking)
//       --variant NAME       full | gaussian | iid           (default gaussian)
//       --hurst H            Hurst parameter                 (default 0.8)
//       --mean X             marginal mean (bytes/frame)     (default 27791)
//       --stddev X           marginal stddev                 (default 6254)
//       --tail-slope X       Pareto tail slope m_T           (default 12)
//       --hosking-horizon N  hosking predictor horizon       (default 64)
//       --paxson-window N    paxson synthesis window         (default 4096)
//       --paxson-overlap N   paxson stitch overlap           (default 512)
//       --threads N          worker threads (0 = auto; never affects output)
//       --queue-capacity X   multiplexer service rate, bytes/sec (0 = no queue)
//       --queue-buffer X     multiplexer buffer, bytes
//       --checkpoint FILE    VBRSRVC1 checkpoint path (written atomically)
//       --checkpoint-every N rounds between checkpoint saves (default 1)
//       --resume             continue from FILE if it exists
//       --max-rss-mib M      fail (exit 3) if peak RSS exceeds M MiB
//       --hash-out FILE      write results_hash (hex) atomically
//       --json               print the summary as one JSON object
//
// Exit codes: 0 success, 1 runtime error (clean vbr::Error — hostile inputs
// never abort), 2 usage error, 3 RSS ceiling exceeded.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>

#include "vbr/common/atomic_file.hpp"
#include "vbr/common/error.hpp"
#include "vbr/model/fgn_generator.hpp"
#include "vbr/service/service_checkpoint.hpp"
#include "vbr/service/traffic_service.hpp"

namespace {

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "serve_traffic: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

double parse_f64(const char* text, const char* flag) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "serve_traffic: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return v;
}

/// Peak resident set (VmHWM) in MiB from /proc/self/status; 0 if unreadable.
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

int usage() {
  std::fprintf(stderr,
               "usage: serve_traffic [--streams N] [--samples N] [--block N] [--seed S]\n"
               "                     [--generator hosking|paxson|onoff]\n"
               "                     [--variant full|gaussian|iid] [--hurst H]\n"
               "                     [--mean X] [--stddev X] [--tail-slope X]\n"
               "                     [--hosking-horizon N] [--paxson-window N]\n"
               "                     [--paxson-overlap N] [--threads N]\n"
               "                     [--queue-capacity X] [--queue-buffer X]\n"
               "                     [--checkpoint FILE] [--checkpoint-every N] [--resume]\n"
               "                     [--max-rss-mib M] [--hash-out FILE] [--json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  vbr::service::ServiceConfig config;
  config.num_streams = 4;
  config.seed = 42;
  config.variant = vbr::model::ModelVariant::kGaussianFarima;
  config.backend = vbr::model::GeneratorBackend::kHosking;
  config.params.hurst = 0.8;
  config.params.marginal.mu_gamma = 27791.0;
  config.params.marginal.sigma_gamma = 6254.0;
  config.params.marginal.tail_slope = 12.0;

  std::uint64_t samples = 4096;
  std::uint64_t block = 64;
  std::uint64_t checkpoint_every = 1;
  std::string checkpoint_path;
  std::string hash_out;
  bool resume = false;
  bool json = false;
  double max_rss_mib = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve_traffic: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--streams") {
      config.num_streams = static_cast<std::size_t>(parse_u64(next(), "--streams"));
    } else if (arg == "--samples") {
      samples = parse_u64(next(), "--samples");
    } else if (arg == "--block") {
      block = parse_u64(next(), "--block");
    } else if (arg == "--seed") {
      config.seed = parse_u64(next(), "--seed");
    } else if (arg == "--generator") {
      try {
        config.backend = vbr::model::generator_backend_from_name(next());
      } catch (const vbr::Error& e) {
        std::fprintf(stderr, "serve_traffic: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--variant") {
      const std::string name = next();
      if (name == "full") {
        config.variant = vbr::model::ModelVariant::kFull;
      } else if (name == "gaussian") {
        config.variant = vbr::model::ModelVariant::kGaussianFarima;
      } else if (name == "iid") {
        config.variant = vbr::model::ModelVariant::kIidGammaPareto;
      } else {
        std::fprintf(stderr, "serve_traffic: unknown variant: %s\n", name.c_str());
        return 2;
      }
    } else if (arg == "--hurst") {
      config.params.hurst = parse_f64(next(), "--hurst");
    } else if (arg == "--mean") {
      config.params.marginal.mu_gamma = parse_f64(next(), "--mean");
    } else if (arg == "--stddev") {
      config.params.marginal.sigma_gamma = parse_f64(next(), "--stddev");
    } else if (arg == "--tail-slope") {
      config.params.marginal.tail_slope = parse_f64(next(), "--tail-slope");
    } else if (arg == "--hosking-horizon") {
      config.tuning.hosking_horizon =
          static_cast<std::size_t>(parse_u64(next(), "--hosking-horizon"));
    } else if (arg == "--paxson-window") {
      config.tuning.paxson_window =
          static_cast<std::size_t>(parse_u64(next(), "--paxson-window"));
    } else if (arg == "--paxson-overlap") {
      config.tuning.paxson_overlap =
          static_cast<std::size_t>(parse_u64(next(), "--paxson-overlap"));
    } else if (arg == "--threads") {
      config.threads = static_cast<std::size_t>(parse_u64(next(), "--threads"));
    } else if (arg == "--queue-capacity") {
      config.queue_capacity_bytes_per_sec = parse_f64(next(), "--queue-capacity");
    } else if (arg == "--queue-buffer") {
      config.queue_buffer_bytes = parse_f64(next(), "--queue-buffer");
    } else if (arg == "--checkpoint") {
      checkpoint_path = next();
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = parse_u64(next(), "--checkpoint-every");
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--max-rss-mib") {
      max_rss_mib = parse_f64(next(), "--max-rss-mib");
    } else if (arg == "--hash-out") {
      hash_out = next();
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "serve_traffic: unknown option: %s\n", arg.c_str());
      return usage();
    }
  }
  if (block == 0 || samples == 0 || checkpoint_every == 0) {
    std::fprintf(stderr, "serve_traffic: --samples, --block, --checkpoint-every must be > 0\n");
    return 2;
  }

  try {
    vbr::service::TrafficService service(config);
    if (resume && !checkpoint_path.empty() &&
        std::filesystem::exists(checkpoint_path)) {
      vbr::service::load_service_checkpoint(checkpoint_path, service);
    }

    // Every stream stays active, so samples-per-stream is rounds * block;
    // a resumed run continues exactly where the last checkpoint stopped.
    const auto target_rounds =
        static_cast<std::uint64_t>((samples + block - 1) / block);
    while (service.rounds() < target_rounds) {
      service.advance_round(static_cast<std::size_t>(block));
      if (!checkpoint_path.empty() && (service.rounds() % checkpoint_every == 0 ||
                                       service.rounds() == target_rounds)) {
        vbr::service::save_service_checkpoint(checkpoint_path, service);
      }
    }

    const double rss = peak_rss_mib();
    if (!hash_out.empty()) {
      char line[32];
      std::snprintf(line, sizeof line, "%016" PRIx64 "\n", service.results_hash());
      vbr::write_file_atomic(hash_out, line);
    }

    if (json) {
      std::printf("{\"streams\": %zu, \"samples_per_stream\": %" PRIu64
                  ", \"rounds\": %" PRIu64 ", \"total_samples\": %" PRIu64
                  ", \"results_hash\": \"%016" PRIx64 "\", \"total_bytes\": %.17g"
                  ", \"peak_rss_mib\": %.1f}\n",
                  config.num_streams, samples, service.rounds(), service.total_samples(),
                  service.results_hash(), service.total_bytes(), rss);
    } else {
      std::printf("streams        %zu\n", config.num_streams);
      std::printf("samples/stream %" PRIu64 "\n", samples);
      std::printf("rounds         %" PRIu64 "\n", service.rounds());
      std::printf("total_samples  %" PRIu64 "\n", service.total_samples());
      std::printf("total_bytes    %.6g\n", service.total_bytes());
      std::printf("results_hash   %016" PRIx64 "\n", service.results_hash());
      if (service.queue() != nullptr) {
        std::printf("queue_lost     %.6g\n", service.queue()->lost_bytes());
        std::printf("queue_max      %.6g\n", service.queue()->max_queue_bytes());
      }
      std::printf("peak_rss_mib   %.1f\n", rss);
    }

    if (max_rss_mib > 0.0 && rss > max_rss_mib) {
      std::fprintf(stderr, "serve_traffic: peak RSS %.1f MiB exceeds ceiling %.1f MiB\n",
                   rss, max_rss_mib);
      return 3;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_traffic: %s\n", e.what());
    return 1;
  }
  return 0;
}
