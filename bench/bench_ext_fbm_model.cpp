// Extension: the Norros fractional-Brownian storage model vs the paper's
// trace-driven simulation.
//
// Contemporary LRD queueing theory gives a closed form for the Fig. 14
// tradeoff: with fBm input, required capacity = mean +
// K(eps) * b^{-(1-H)/H}. This driver fits the fBm descriptor to the trace
// (moments + Table-3 H), computes the analytic Q-C curve, and overlays the
// simulated one — the shapes should agree: weak (power-law) buffer
// sensitivity, economy of scale in N.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/net/fbm_queue.hpp"
#include "vbr/net/qc_analysis.hpp"

int main() {
  vbrbench::print_exhibit_header("Extension (Norros model)",
                                 "analytic fBm queue vs trace-driven simulation");
  const auto& trace = vbrbench::full_trace();
  const auto frames = trace.frames.samples();
  const double dt = trace.frames.dt_seconds();
  const double hurst = 0.8;  // Table 3
  const auto single = vbr::net::fit_fbm_traffic(frames, hurst);
  std::printf("\n  fBm descriptor: m = %.0f bytes/frame, sd = %.0f, H = %.2f\n",
              single.mean_bytes, std::sqrt(single.variance_bytes2), single.hurst);

  const double target = 1e-3;
  const std::vector<double> delays{0.005, 0.02, 0.1, 0.4, 1.0, 4.0};
  for (std::size_t n : {1u, 5u, 20u}) {
    const auto aggregate = vbr::net::superpose(single, n);
    vbr::net::MuxExperiment experiment;
    experiment.sources = n;
    experiment.replications = (n > 2) ? 3 : 1;
    const vbr::net::MuxWorkload workload(frames, experiment);

    std::printf("\n  N = %zu   capacity per source (Mb/s) at loss ~ %.0e\n", n, target);
    std::printf("  %14s %16s %16s\n", "T_max", "Norros analytic", "simulated");
    for (double delay : delays) {
      // Analytic: buffer in bytes given the analytic capacity is implicit;
      // iterate once (fixed point): start from the simulated-style sizing
      // with buffer = delay * mean rate.
      double buffer = delay * aggregate.mean_bytes / dt;
      double capacity = 0.0;
      for (int iter = 0; iter < 20; ++iter) {
        capacity = vbr::net::fbm_required_capacity(aggregate, buffer, target);
        buffer = delay * capacity / dt;  // Q = T_max * C, in bytes
      }
      const double analytic_bps = capacity * 8.0 / dt / static_cast<double>(n);
      const double simulated_bps = vbr::net::required_capacity_bps(
          workload, delay, target, vbr::net::QosMeasure::kOverallLoss);
      std::printf("  %12.0f ms %13.3f Mb %13.3f Mb\n", delay * 1e3, analytic_bps / 1e6,
                  simulated_bps / 1e6);
    }
  }

  std::printf(
      "\n  Shape check: both columns decay slowly with the buffer (the\n"
      "  b^{-(1-H)/H} law: going 5 ms -> 4 s only shaves a modest fraction)\n"
      "  and show the same economy of scale in N. The analytic model treats\n"
      "  overflow probability as loss and assumes Gaussian marginals, so\n"
      "  absolute values differ most at N = 1 where the Pareto tail matters,\n"
      "  converging as aggregation Gaussianizes the traffic -- consistent\n"
      "  with the paper's Fig. 16 reasoning.\n");
  return 0;
}
