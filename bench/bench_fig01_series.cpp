// Figure 1: time series of the entire two-hour VBR video sequence.
//
// Emits the series decimated to ~170 printed rows (max over each bucket so
// the narrow effect peaks stay visible, as they do in the paper's plot) and
// locates the named events: the wide opening-text elevation, three sharp
// effect peaks near the center, and the "Death Star" explosion near the
// end.
#include <algorithm>
#include <cstdio>

#include "bench_support.hpp"

int main() {
  vbrbench::print_exhibit_header("Figure 1", "full two-hour VBR time series");
  const auto& trace = vbrbench::full_trace();
  const auto& values = trace.frames.values();
  const std::size_t n = values.size();

  std::printf("\n  Named events in the realization:\n");
  for (const auto& event : trace.events) {
    double peak = 0.0;
    for (std::size_t f = event.start_frame;
         f < std::min(n, event.start_frame + event.length); ++f) {
      peak = std::max(peak, values[f]);
    }
    std::printf("    %-24s t = %7.1f s, duration %5.1f s, peak %6.0f bytes/frame\n",
                event.name.c_str(),
                static_cast<double>(event.start_frame) * trace.frames.dt_seconds(),
                static_cast<double>(event.length) * trace.frames.dt_seconds(), peak);
  }

  const std::size_t buckets = 170;
  const std::size_t per_bucket = std::max<std::size_t>(1, n / buckets);
  std::printf("\n  Decimated series (bucket max over %zu frames):\n", per_bucket);
  std::printf("  %10s %12s  %s\n", "time (s)", "bytes/frame", "profile");
  for (std::size_t b = 0; b * per_bucket < n; ++b) {
    const std::size_t lo = b * per_bucket;
    const std::size_t hi = std::min(n, lo + per_bucket);
    double bucket_max = 0.0;
    for (std::size_t f = lo; f < hi; ++f) bucket_max = std::max(bucket_max, values[f]);
    const auto bar = static_cast<int>(bucket_max / 80459.0 * 60.0);
    std::printf("  %10.1f %12.0f  %.*s\n",
                static_cast<double>(lo) * trace.frames.dt_seconds(), bucket_max,
                std::clamp(bar, 0, 60), "############################################################");
  }

  const auto s = trace.frames.summary();
  std::printf("\n  Shape check: sustained level near %.0f bytes/frame with sharp peaks\n",
              s.mean);
  std::printf("  to ~%.0f (x%.2f mean) concentrated near the center and the finale.\n",
              s.max, s.peak_to_mean);
  return 0;
}
