// Shared support for the experiment drivers in bench/: a cached full-length
// surrogate trace (the stand-in for the paper's 171,000-frame dataset) and
// small formatting helpers so every driver prints exhibits the same way.
#pragma once

#include <cstddef>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "vbr/model/starwars_surrogate.hpp"

namespace vbrbench {

/// Number of frames in the paper's trace (Table 1).
inline constexpr std::size_t kPaperFrames = 171000;

/// The full-length calibrated surrogate trace; built once per process.
/// Honors the VBR_BENCH_FRAMES environment variable for quick smoke runs.
const vbr::model::SurrogateTrace& full_trace();

/// Natural log of every sample (the paper's transform before Whittle).
std::vector<double> log_values(std::span<const double> values);

/// Banner naming the exhibit a driver reproduces.
void print_exhibit_header(const std::string& exhibit, const std::string& description);

/// One "paper vs measured" line for EXPERIMENTS.md-style summaries.
void print_paper_vs_measured(const std::string& quantity, double paper, double measured);

/// "on" when hot-loop VBR_DCHECK contracts are compiled in, "off" for a
/// plain Release build. Stamped into benchmark JSON so a number measured
/// with contracts enabled is never compared against a contract-free run.
const char* contracts_state();

/// Write `json` to `path` atomically: the content goes to a sibling temp
/// file first and is renamed into place only after a successful flush, so a
/// killed or crashing bench can never leave a truncated JSON file behind.
/// Throws vbr::IoError on failure (the temp file is cleaned up).
void write_json_atomic(const std::filesystem::path& path, const std::string& json);

/// Drop `json` as BENCH_<name>.json in the directory named by the
/// VBR_BENCH_JSON_DIR environment variable (created if missing), using
/// write_json_atomic. No-op when the variable is unset, so interactive runs
/// still just print to stdout.
void emit_bench_json(const std::string& name, const std::string& json);

}  // namespace vbrbench
