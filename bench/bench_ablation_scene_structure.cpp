// Ablation (DESIGN.md #3): what the scene overlay contributes.
//
// The surrogate layers piecewise-constant scene levels (Section 4.2's
// observed short-range structure) on top of the fGn/Gamma-Pareto core. This
// driver rebuilds the surrogate with scenes disabled and compares: the
// marginal calibration and H must be set by the core (unchanged), while the
// short-lag ACF and small-buffer queueing are where scenes matter.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/model/starwars_surrogate.hpp"
#include "vbr/net/qc_analysis.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/stats/variance_time.hpp"

namespace {

void report(const char* label, const vbr::model::SurrogateTrace& trace) {
  const auto s = trace.frames.summary();
  const auto acf = vbr::stats::autocorrelation(trace.frames.samples(), 2000);
  vbr::stats::VarianceTimeOptions vt;
  vt.fit_min_m = 200;
  const double h = vbr::stats::variance_time(trace.frames.samples(), vt).hurst;

  vbr::net::MuxExperiment experiment;
  experiment.sources = 1;
  const vbr::net::MuxWorkload workload(trace.frames.samples(), experiment);
  const double c2ms = vbr::net::required_capacity_bps(workload, 0.002, 1e-3,
                                                      vbr::net::QosMeasure::kOverallLoss);

  std::printf("  %-16s %8.0f %6.3f %7.3f %7.3f %7.3f %7.3f %10.3f\n", label, s.mean,
              s.coefficient_of_variation, acf[1], acf[10], acf[100], h, c2ms / 1e6);
}

}  // namespace

int main() {
  vbrbench::print_exhibit_header("Ablation (Sec. 4.2)", "scene-structure overlay on/off");

  vbr::model::SurrogateOptions with_scenes;
  with_scenes.frames = 65536;
  auto scenes_on = vbr::model::make_starwars_surrogate(with_scenes);

  auto no_scenes = with_scenes;
  no_scenes.scene_weight = 0.0;
  auto scenes_off = vbr::model::make_starwars_surrogate(no_scenes);

  std::printf("\n  %-16s %8s %6s %7s %7s %7s %7s %10s\n", "variant", "mean", "CoV",
              "r(1)", "r(10)", "r(100)", "H(VT)", "C@2ms Mb/s");
  report("scenes ON", scenes_on);
  report("scenes OFF", scenes_off);

  std::printf("\n  scene metadata (scenes ON): %zu shots over %zu frames\n",
              scenes_on.scenes.size(), scenes_on.frames.size());
  std::printf(
      "\n  Shape check: mean, CoV and H are set by the calibrated core (nearly\n"
      "  identical across variants); the scene overlay's contribution is the\n"
      "  elevated short-lag correlation (plateaus from per-shot constancy),\n"
      "  mirroring where the paper says its model leaves room for explicit\n"
      "  short-range augmentation.\n");
  return 0;
}
