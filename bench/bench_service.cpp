// bench_service: throughput and memory footprint of the streaming traffic
// service (src/vbr/service), emitted as JSON for dashboards/CI.
//
// Three questions, one driver:
//   1. Build rate — how fast can the service stand up N per-stream states
//      (streams/sec)? This bounds cold-start for a million-stream fleet.
//   2. Serve rate — steady-state samples/sec of advance_round() for each
//      thread count, with the FNV-1a results hash doubling as the
//      determinism witness (all thread counts must agree bit-for-bit).
//   3. Footprint — peak RSS, normalized to MiB per 10^6 streams so runs at
//      different scales land on one comparable number.
// A final save/load round-trip times the VBRSRVC1 checkpoint path and
// verifies the restored service reproduces the same results hash, and an
// overload phase prices the governor: fault-isolation overhead, shed
// latency, and streams served under a seeded pressure window (with the
// degraded-mode hash doubling as a determinism witness).
//
// Usage:
//   ./bench_service [streams] [samples_per_stream] [block] [thread_list]
// e.g. ./bench_service 65536 1024 256 1,2,4
#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "vbr/service/governor.hpp"
#include "vbr/service/service_checkpoint.hpp"
#include "vbr/service/traffic_service.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Resident-set figure from /proc/self/status in MiB; 0 if unreadable.
/// "VmHWM:" reads the process peak, "VmRSS:" the current footprint.
double rss_mib(const char* field) {
  std::ifstream status("/proc/self/status");
  const std::size_t field_len = std::strlen(field);
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(field, 0) == 0) {
      return std::strtod(line.c_str() + static_cast<std::ptrdiff_t>(field_len), nullptr) /
             1024.0;
    }
  }
  return 0.0;
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int len = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (len > 0) out.append(buf, std::min(static_cast<std::size_t>(len), sizeof buf - 1));
}

std::vector<std::size_t> parse_thread_list(const char* arg) {
  std::vector<std::size_t> threads;
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) threads.push_back(std::stoul(token));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  vbr::service::ServiceConfig config;
  config.num_streams = (argc > 1) ? std::stoul(argv[1]) : 65536;
  config.seed = 1994;
  config.variant = vbr::model::ModelVariant::kGaussianFarima;
  config.backend = vbr::model::GeneratorBackend::kHosking;
  config.params.hurst = 0.8;
  config.params.marginal.mu_gamma = 27791.0;
  config.params.marginal.sigma_gamma = 6254.0;
  config.params.marginal.tail_slope = 12.0;

  const std::size_t samples_per_stream = (argc > 2) ? std::stoul(argv[2]) : 1024;
  const std::size_t block = (argc > 3) ? std::stoul(argv[3]) : 256;
  const std::vector<std::size_t> thread_counts =
      (argc > 4) ? parse_thread_list(argv[4]) : std::vector<std::size_t>{1, 2, 4};
  const std::size_t rounds = std::max<std::size_t>(1, samples_per_stream / block);

  std::string json;
  appendf(json, "{\n");
  appendf(json, "  \"benchmark\": \"service\",\n");
  appendf(json, "  \"streams\": %zu,\n", config.num_streams);
  appendf(json, "  \"samples_per_stream\": %zu,\n", rounds * block);
  appendf(json, "  \"block\": %zu,\n", block);
  appendf(json, "  \"backend\": \"hosking\",\n");
  appendf(json, "  \"hosking_horizon\": %zu,\n", config.tuning.hosking_horizon);
  appendf(json, "  \"hardware_concurrency\": %u,\n", std::thread::hardware_concurrency());
  appendf(json, "  \"contracts\": \"%s\",\n", vbrbench::contracts_state());
  appendf(json, "  \"results\": [\n");

  double baseline_sps = 0.0;
  std::uint64_t baseline_hash = 0;
  bool bit_identical = true;
  double build_seconds_first = 0.0;
  double serve_rss = 0.0;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    config.threads = thread_counts[i];
    const auto build_start = std::chrono::steady_clock::now();
    vbr::service::TrafficService service(config);
    const double build_seconds = seconds_since(build_start);
    if (i == 0) build_seconds_first = build_seconds;

    const auto serve_start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) service.advance_round(block);
    const double serve_seconds = seconds_since(serve_start);
    // Footprint while exactly one fleet is live and serving — the number
    // the bounded-memory contract is about. The later checkpoint phase
    // legitimately holds two services plus payload buffers, so the process
    // peak (reported separately) is not the per-stream figure.
    if (i == 0) serve_rss = rss_mib("VmRSS:");

    const std::uint64_t hash = service.results_hash();
    const double samples_per_second =
        serve_seconds > 0.0 ? static_cast<double>(service.total_samples()) / serve_seconds : 0.0;
    if (i == 0) {
      baseline_sps = samples_per_second;
      baseline_hash = hash;
    } else if (hash != baseline_hash) {
      bit_identical = false;
    }
    appendf(json,
            "    {\"threads\": %zu, \"build_seconds\": %.6f, "
            "\"streams_per_second_build\": %.1f, \"serve_seconds\": %.6f, "
            "\"samples_per_second\": %.1f, \"speedup_vs_first\": %.3f, "
            "\"results_hash\": \"%016llx\"}%s\n",
            thread_counts[i], build_seconds,
            build_seconds > 0.0 ? static_cast<double>(config.num_streams) / build_seconds : 0.0,
            serve_seconds, samples_per_second,
            baseline_sps > 0.0 ? samples_per_second / baseline_sps : 0.0,
            static_cast<unsigned long long>(hash),
            i + 1 < thread_counts.size() ? "," : "");
  }
  appendf(json, "  ],\n");

  // Checkpoint round-trip: time the VBRSRVC1 save and load on a fresh
  // service advanced to the same position, and require the restored hash to
  // match (the SIGKILL soak's correctness condition, timed here).
  const auto scratch = std::filesystem::temp_directory_path() / "bench_service.ckpt";
  config.threads = thread_counts.back();
  bool checkpoint_hash_match = false;
  double save_seconds = 0.0;
  double load_seconds = 0.0;
  {
    vbr::service::TrafficService service(config);
    for (std::size_t r = 0; r < rounds; ++r) service.advance_round(block);
    const auto save_start = std::chrono::steady_clock::now();
    vbr::service::save_service_checkpoint(scratch, service);
    save_seconds = seconds_since(save_start);

    vbr::service::TrafficService restored(config);
    const auto load_start = std::chrono::steady_clock::now();
    vbr::service::load_service_checkpoint(scratch, restored);
    load_seconds = seconds_since(load_start);
    checkpoint_hash_match = restored.results_hash() == service.results_hash() &&
                            service.results_hash() == baseline_hash;
  }
  std::error_code cleanup;
  std::filesystem::remove(scratch, cleanup);

  appendf(json,
          "  \"checkpoint\": {\"save_seconds\": %.6f, \"load_seconds\": %.6f, "
          "\"hash_match\": %s},\n",
          save_seconds, load_seconds, checkpoint_hash_match ? "true" : "false");

  // Overload phase: attach the governor and measure what resilience costs.
  //   - quarantine_overhead_fraction: the snapshot-every-round guard (full
  //     retry/quarantine protection on every block) vs the ungoverned loop.
  //   - shed_latency_seconds: wall time of the advance_round that crosses the
  //     level-1 pressure epoch and applies the shed.
  //   - streams_served_under_pressure: streams still serving once shed and
  //     quarantine have both been applied.
  // The seeded schedule (2 faults + a level-1 window) must yield exactly 2
  // StreamFailure records and a results hash invariant to thread count; the
  // bench exits nonzero otherwise, so a recorded artifact is itself a
  // determinism witness for the degraded mode.
  const std::uint64_t total_samples = static_cast<std::uint64_t>(rounds) * block;
  vbr::service::GovernorConfig overload;
  overload.policy.max_attempts = 3;
  overload.stream_faults = {
      {std::min<std::size_t>(1, config.num_streams - 1),
       std::max<std::uint64_t>(1, total_samples / 2), vbr::run::FaultKind::kPermanent, 1},
      {std::min<std::size_t>(3, config.num_streams - 1),
       std::max<std::uint64_t>(2, total_samples / 4), vbr::run::FaultKind::kTransient, 3},
  };
  overload.pressure_schedule = {{std::max<std::uint64_t>(3, total_samples / 3), 1},
                                {std::max<std::uint64_t>(4, 2 * total_samples / 3), 0}};
  const std::size_t expected_failures =
      overload.stream_faults[0].stream == overload.stream_faults[1].stream ? 1 : 2;

  struct OverloadRun {
    std::uint64_t hash = 0;
    std::size_t failures = 0;
    std::uint64_t retries = 0;
    double shed_latency_seconds = 0.0;
    std::size_t streams_under_pressure = 0;
  };
  const auto run_overloaded = [&](std::size_t threads) {
    vbr::service::ServiceConfig c = config;
    c.threads = threads;
    vbr::service::TrafficService svc(c);
    vbr::service::OverloadGovernor governor(svc, overload);
    const std::uint64_t shed_epoch = overload.pressure_schedule.front().at_epoch;
    OverloadRun run;
    while (governor.epoch() < total_samples) {
      const std::uint64_t before = governor.epoch();
      const auto step =
          static_cast<std::size_t>(std::min<std::uint64_t>(block, total_samples - before));
      const bool crosses = before < shed_epoch && before + step >= shed_epoch;
      const auto round_start = std::chrono::steady_clock::now();
      governor.advance_round(step);
      if (crosses) {
        run.shed_latency_seconds = seconds_since(round_start);
        run.streams_under_pressure =
            c.num_streams - governor.shed_streams() - governor.quarantined_streams();
      }
    }
    run.hash = svc.results_hash();
    run.failures = governor.failures().size();
    run.retries = governor.transient_retries();
    return run;
  };

  // Isolation overhead: same fleet, same rounds, no faults — first bare,
  // then behind the always-snapshot guard.
  config.threads = thread_counts.back();
  double plain_seconds = 0.0;
  double guarded_seconds = 0.0;
  {
    vbr::service::TrafficService svc(config);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) svc.advance_round(block);
    plain_seconds = seconds_since(start);
  }
  {
    vbr::service::TrafficService svc(config);
    vbr::service::GovernorConfig snapshot_only;
    snapshot_only.snapshot_every_round = true;
    vbr::service::OverloadGovernor governor(svc, snapshot_only);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) governor.advance_round(block);
    guarded_seconds = seconds_since(start);
  }
  const double quarantine_overhead =
      plain_seconds > 0.0 ? guarded_seconds / plain_seconds - 1.0 : 0.0;

  const OverloadRun first = run_overloaded(thread_counts.front());
  const OverloadRun last = run_overloaded(thread_counts.back());
  const bool overload_hash_match = first.hash == last.hash &&
                                   first.failures == expected_failures &&
                                   last.failures == expected_failures;

  appendf(json,
          "  \"overload\": {\"plain_seconds\": %.6f, \"guarded_seconds\": %.6f, "
          "\"quarantine_overhead_fraction\": %.4f, \"shed_latency_seconds\": %.6f, "
          "\"streams_served_under_pressure\": %zu, \"stream_failures\": %zu, "
          "\"expected_stream_failures\": %zu, \"transient_retries\": %llu, "
          "\"results_hash\": \"%016llx\", \"hash_match\": %s},\n",
          plain_seconds, guarded_seconds, quarantine_overhead, last.shed_latency_seconds,
          last.streams_under_pressure, last.failures, expected_failures,
          static_cast<unsigned long long>(last.retries),
          static_cast<unsigned long long>(last.hash), overload_hash_match ? "true" : "false");
  appendf(json, "  \"build_seconds\": %.6f,\n", build_seconds_first);
  appendf(json, "  \"serve_rss_mib\": %.1f,\n", serve_rss);
  appendf(json, "  \"peak_rss_mib\": %.1f,\n", rss_mib("VmHWM:"));
  appendf(json, "  \"rss_mib_per_million_streams\": %.1f,\n",
          serve_rss * 1.0e6 / static_cast<double>(config.num_streams));
  appendf(json, "  \"bit_identical_across_thread_counts\": %s\n",
          bit_identical ? "true" : "false");
  appendf(json, "}\n");
  std::fputs(json.c_str(), stdout);
  vbrbench::emit_bench_json("service", json);
  return (bit_identical && checkpoint_hash_match && overload_hash_match) ? 0 : 1;
}
