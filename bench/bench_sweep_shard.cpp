// bench_sweep_shard: checkpoint-I/O cost and steal latency of the sharded
// sweep machinery (src/vbr/sweep), emitted as JSON for dashboards/CI.
//
// Three questions, one driver:
//   1. Checkpoint I/O per settled cell — the PR 5 manifest rewrote every
//      settled record after every settle (O(cells) bytes per cell, O(n^2)
//      per sweep); the VBRSWPL1 log appends one frame (O(1) amortized).
//      Both paths run against real files over a ladder of cell counts and
//      report measured bytes and seconds per cell; the log's bytes/cell
//      must stay flat while the rewrite's grows linearly.
//   2. Steal latency — how long a survivor takes to claim a dead pool's
//      stale lease and salvage its log prefix (claim_lease steal path +
//      recover_result_log), measured over many iterations.
//   3. Multi-pool throughput — a real in-process sweep via run_pools for
//      each pool count, with the merged results hash doubling as the
//      determinism witness (all pool counts must agree bit-for-bit with
//      the single-pool run).
//
// Usage:
//   ./bench_sweep_shard [cells_list] [pool_list] [steal_iters]
// e.g. ./bench_sweep_shard 512,2048,8192 1,2,4 200
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "vbr/sweep/dispatch.hpp"
#include "vbr/sweep/manifest.hpp"
#include "vbr/sweep/result_log.hpp"
#include "vbr/sweep/shard.hpp"
#include "vbr/sweep/supervisor.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int len = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (len > 0) out.append(buf, std::min(static_cast<std::size_t>(len), sizeof buf - 1));
}

std::vector<std::size_t> parse_list(const char* arg) {
  std::vector<std::size_t> values;
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) values.push_back(std::stoul(token));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return values;
}

vbr::sweep::CellRecord synthetic_record(std::uint64_t index) {
  vbr::sweep::CellRecord record;
  record.cell_index = index;
  record.status = vbr::sweep::CellStatus::kDone;
  record.result.mean_rate_bps = 5.3e6 + static_cast<double>(index);
  record.result.capacity_bps = 6.6e6;
  record.result.buffer_bytes = 8192.0;
  record.result.loss_rate = 1.25e-3;
  record.result.mean_queue_bytes = 900.0;
  record.result.max_queue_bytes = 8192.0;
  return record;
}

/// A grid of ~`cells` cells (hursts x 2 utilizations x 2 source counts),
/// cheap enough to evaluate in-process.
vbr::sweep::SweepGrid grid_of(std::size_t cells) {
  vbr::sweep::SweepGrid grid;
  grid.queues = {vbr::sweep::QueueKind::kFluid};
  const std::size_t steps = std::max<std::size_t>(1, cells / 4);
  grid.hursts.clear();
  for (std::size_t i = 0; i < steps; ++i) {
    grid.hursts.push_back(0.55 + 0.4 * static_cast<double>(i) /
                                     static_cast<double>(steps));
  }
  grid.utilizations = {0.8, 0.9};
  grid.buffer_ms = {10.0};
  grid.sources = {1, 2};
  grid.frames_per_source = 64;
  grid.seed = 1994;
  return grid;
}

struct CheckpointCost {
  std::uint64_t bytes = 0;
  double seconds = 0.0;
};

/// The old discipline: re-encode and atomically rewrite the whole manifest
/// after every settled cell.
CheckpointCost manifest_rewrite_cost(const std::filesystem::path& path,
                                     std::size_t cells) {
  vbr::sweep::SweepManifest manifest;
  manifest.fingerprint = 0xbe9c4a11;
  manifest.total_cells = cells;
  CheckpointCost cost;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < cells; ++i) {
    manifest.records.push_back(synthetic_record(i));
    vbr::sweep::save_manifest(path, manifest, false);
    cost.bytes += vbr::sweep::encode_manifest(manifest).size();
  }
  cost.seconds = seconds_since(start);
  std::filesystem::remove(path);
  return cost;
}

/// The new discipline: append one framed record per settled cell.
CheckpointCost log_append_cost(const std::filesystem::path& path, std::size_t cells) {
  vbr::sweep::ResultLogHeader header;
  header.sweep_fingerprint = 0xbe9c4a11;
  header.shard_fingerprint = 0x5eed;
  header.total_cells = cells;
  header.first_cell = 0;
  header.end_cell = cells;
  CheckpointCost cost;
  const auto start = std::chrono::steady_clock::now();
  auto writer = vbr::sweep::ResultLogWriter::create(path, header, false);
  for (std::size_t i = 0; i < cells; ++i) writer.append(synthetic_record(i));
  writer.close();
  cost.seconds = seconds_since(start);
  cost.bytes = std::filesystem::file_size(path);
  std::filesystem::remove(path);
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::size_t> cells_list =
      (argc > 1) ? parse_list(argv[1]) : std::vector<std::size_t>{512, 2048, 8192};
  const std::vector<std::size_t> pool_list =
      (argc > 2) ? parse_list(argv[2]) : std::vector<std::size_t>{1, 2, 4};
  const std::size_t steal_iters = (argc > 3) ? std::stoul(argv[3]) : 200;

  // Pid-salted scratch dir: two bench invocations (ctest smoke next to a
  // manual run) must not tear each other's sweep directories down.
  const auto scratch =
      std::filesystem::temp_directory_path() /
      ("bench_sweep_shard_" + std::to_string(static_cast<long>(::getpid())));
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  std::string json;
  appendf(json, "{\n");
  appendf(json, "  \"benchmark\": \"sweep_shard\",\n");
  appendf(json, "  \"contracts\": \"%s\",\n", vbrbench::contracts_state());

  // --- 1. checkpoint I/O per settled cell, old rewrite vs append-only ---
  appendf(json, "  \"checkpoint_io\": [\n");
  double first_log_bpc = 0.0;
  double last_log_bpc = 0.0;
  for (std::size_t i = 0; i < cells_list.size(); ++i) {
    const std::size_t cells = cells_list[i];
    const CheckpointCost rewrite =
        manifest_rewrite_cost(scratch / "manifest.bin", cells);
    const CheckpointCost append = log_append_cost(scratch / "shard.log", cells);
    const double rewrite_bpc =
        static_cast<double>(rewrite.bytes) / static_cast<double>(cells);
    const double append_bpc =
        static_cast<double>(append.bytes) / static_cast<double>(cells);
    if (i == 0) first_log_bpc = append_bpc;
    last_log_bpc = append_bpc;
    appendf(json,
            "    {\"cells\": %zu, \"manifest_rewrite_bytes\": %llu, "
            "\"manifest_rewrite_bytes_per_cell\": %.1f, "
            "\"manifest_rewrite_seconds\": %.6f, "
            "\"log_append_bytes\": %llu, \"log_append_bytes_per_cell\": %.1f, "
            "\"log_append_seconds\": %.6f}%s\n",
            cells, static_cast<unsigned long long>(rewrite.bytes), rewrite_bpc,
            rewrite.seconds, static_cast<unsigned long long>(append.bytes),
            append_bpc, append.seconds,
            i + 1 < cells_list.size() ? "," : "");
  }
  appendf(json, "  ],\n");
  // O(1) amortized: bytes/cell must not grow with the cell count (the
  // header amortizes away, so the figure *shrinks* toward the frame size).
  const bool amortized_o1 = last_log_bpc <= first_log_bpc * 1.05;
  appendf(json, "  \"log_bytes_per_cell_flat\": %s,\n",
          amortized_o1 ? "true" : "false");

  // --- 2. steal latency: claim a stale lease + salvage the log prefix ---
  const std::size_t salvage_records = 64;
  {
    vbr::sweep::ResultLogHeader header;
    header.sweep_fingerprint = 0xbe9c4a11;
    header.shard_fingerprint = 0x5eed;
    header.total_cells = salvage_records;
    header.first_cell = 0;
    header.end_cell = salvage_records;
    const auto log_path = scratch / "stolen.log";
    auto writer = vbr::sweep::ResultLogWriter::create(log_path, header, false);
    for (std::size_t i = 0; i < salvage_records; ++i) {
      writer.append(synthetic_record(i));
    }
    writer.close();

    const auto lease_path = scratch / "stolen.lease";
    double steal_seconds = 0.0;
    double salvage_seconds = 0.0;
    bool steal_ok = true;
    for (std::size_t i = 0; i < steal_iters; ++i) {
      // A dead pool's lease: present, but its mtime stopped advancing.
      (void)vbr::sweep::claim_lease(lease_path, "dead-pool", 1.0, true);
      std::filesystem::last_write_time(
          lease_path,
          std::filesystem::file_time_type::clock::now() - std::chrono::hours(1));
      const auto steal_start = std::chrono::steady_clock::now();
      const auto claim = vbr::sweep::claim_lease(lease_path, "thief", 1.0, true);
      steal_seconds += seconds_since(steal_start);
      steal_ok = steal_ok && claim == vbr::sweep::LeaseClaim::kStolen;

      const auto salvage_start = std::chrono::steady_clock::now();
      const auto scan = vbr::sweep::recover_result_log(log_path, header);
      salvage_seconds += seconds_since(salvage_start);
      steal_ok = steal_ok && scan.has_value() &&
                 scan->records.size() == salvage_records;
      vbr::sweep::release_lease(lease_path, "thief");
    }
    appendf(json,
            "  \"steal\": {\"iterations\": %zu, \"mean_steal_seconds\": %.6e, "
            "\"salvage_records\": %zu, \"mean_salvage_seconds\": %.6e, "
            "\"all_steals_succeeded\": %s},\n",
            steal_iters, steal_seconds / static_cast<double>(steal_iters),
            salvage_records, salvage_seconds / static_cast<double>(steal_iters),
            steal_ok ? "true" : "false");
    if (!steal_ok) {
      std::fprintf(stderr, "bench_sweep_shard: steal/salvage loop failed\n");
      return 1;
    }
  }

  // --- 3. multi-pool throughput + cross-pool-count determinism witness ---
  const std::size_t sweep_cells = cells_list.front();
  const vbr::sweep::SweepGrid grid = grid_of(sweep_cells);
  appendf(json, "  \"sweep_cells\": %zu,\n", vbr::sweep::cell_count(grid));
  appendf(json, "  \"pools\": [\n");
  std::uint64_t baseline_hash = 0;
  double baseline_cps = 0.0;
  bool bit_identical = true;
  for (std::size_t i = 0; i < pool_list.size(); ++i) {
    vbr::sweep::PoolOptions options;
    options.sweep_dir = scratch / ("sweep_p" + std::to_string(pool_list[i]));
    options.grid = grid;
    options.shard_count = std::max<std::uint64_t>(1, pool_list[i] * 2);
    options.lease.ttl_seconds = 5.0;
    options.lease.heartbeat_seconds = 0.5;
    options.limits.isolate = false;

    const auto start = std::chrono::steady_clock::now();
    const vbr::sweep::MultiPoolReport multi =
        vbr::sweep::run_pools(options, pool_list[i]);
    const double wall = seconds_since(start);
    const vbr::sweep::SweepReport merged = vbr::sweep::collect_sweep(
        options.sweep_dir, grid, options.shard_count);
    const double cps =
        wall > 0.0 ? static_cast<double>(merged.total_cells) / wall : 0.0;
    if (i == 0) {
      baseline_hash = merged.results_hash;
      baseline_cps = cps;
    } else if (merged.results_hash != baseline_hash) {
      bit_identical = false;
    }
    appendf(json,
            "    {\"pools\": %zu, \"shards\": %llu, \"pools_failed\": %zu, "
            "\"wall_seconds\": %.6f, \"cells_per_second\": %.1f, "
            "\"speedup_vs_first\": %.3f, \"results_hash\": \"%016llx\"}%s\n",
            pool_list[i], static_cast<unsigned long long>(options.shard_count),
            multi.pools_failed, wall, cps,
            baseline_cps > 0.0 ? cps / baseline_cps : 0.0,
            static_cast<unsigned long long>(merged.results_hash),
            i + 1 < pool_list.size() ? "," : "");
  }
  appendf(json, "  ],\n");
  appendf(json, "  \"bit_identical_across_pool_counts\": %s\n",
          bit_identical ? "true" : "false");
  appendf(json, "}\n");

  std::filesystem::remove_all(scratch);
  std::fputs(json.c_str(), stdout);
  vbrbench::emit_bench_json("sweep_shard", json);
  return (bit_identical && amortized_o1) ? 0 : 1;
}
