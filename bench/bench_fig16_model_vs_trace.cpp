// Figure 16: Q-C curves comparing simulations driven by (a) the trace,
// (b) the fractional ARIMA model with Gaussian marginals (LRD only),
// (c) the full model with Gamma/Pareto marginals (the paper's proposal),
// and (d) an i.i.d. Gamma/Pareto process (heavy tail only). P_l = 0.
//
// Expected shape: same general curve shape for all; the full model sits
// closest to the trace; both single-feature variants are optimistic (demand
// less capacity); agreement improves as N grows while the gap between the
// three models shrinks.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/model/vbr_source.hpp"
#include "vbr/net/qc_analysis.hpp"

int main() {
  vbrbench::print_exhibit_header("Figure 16", "trace vs model Q-C curves (P_l = 0)");
  const auto& trace = vbrbench::full_trace();
  const auto frames = trace.frames.samples();

  // Fit the four-parameter model to the trace, then realize the three
  // model variants at the trace's length.
  const auto model = vbr::model::VbrVideoSourceModel::fit(frames);
  const auto& p = model.params();
  std::printf("\n  fitted model: mu=%.0f sigma=%.0f m_T=%.2f H=%.3f\n",
              p.marginal.mu_gamma, p.marginal.sigma_gamma, p.marginal.tail_slope, p.hurst);

  vbr::Rng rng(20240612);
  const auto full = model.generate(frames.size(), rng, vbr::model::ModelVariant::kFull);
  const auto gaussian =
      model.generate(frames.size(), rng, vbr::model::ModelVariant::kGaussianFarima);
  const auto iid =
      model.generate(frames.size(), rng, vbr::model::ModelVariant::kIidGammaPareto);

  struct Driver {
    const char* label;
    std::span<const double> data;
  };
  const std::vector<Driver> drivers{
      {"trace", frames},
      {"full model", full},
      {"fARIMA+Gaussian", gaussian},
      {"iid Gamma/Pareto", iid},
  };
  const std::vector<double> delays{0.0005, 0.002, 0.01, 0.05, 0.25, 1.0};

  for (std::size_t sources : {1u, 2u, 5u, 20u}) {
    std::printf("\n  N = %zu   capacity per source (Mb/s) at P_l = 0\n", sources);
    std::printf("  %14s", "T_max (ms)");
    for (const auto& d : drivers) std::printf(" %17s", d.label);
    std::printf("\n");

    std::vector<std::vector<double>> capacity(delays.size(),
                                              std::vector<double>(drivers.size()));
    for (std::size_t di_driver = 0; di_driver < drivers.size(); ++di_driver) {
      vbr::net::MuxExperiment experiment;
      experiment.sources = sources;
      experiment.replications = (sources > 2) ? 3 : 1;
      const vbr::net::MuxWorkload workload(drivers[di_driver].data, experiment);
      const auto curve =
          vbr::net::qc_curve(workload, delays, 0.0, vbr::net::QosMeasure::kOverallLoss);
      for (std::size_t di = 0; di < delays.size(); ++di) {
        capacity[di][di_driver] = curve[di].capacity_per_source_bps;
      }
    }
    for (std::size_t di = 0; di < delays.size(); ++di) {
      std::printf("  %14.1f", delays[di] * 1e3);
      for (double c : capacity[di]) std::printf(" %14.3f Mb", c / 1e6);
      std::printf("\n");
    }

    // Aggregate closeness to the trace across the delay grid (log-space RMS).
    std::printf("  RMS log-capacity gap vs trace:");
    for (std::size_t k = 1; k < drivers.size(); ++k) {
      double rms = 0.0;
      for (std::size_t di = 0; di < delays.size(); ++di) {
        const double gap = std::log(capacity[di][k] / capacity[di][0]);
        rms += gap * gap;
      }
      rms = std::sqrt(rms / static_cast<double>(delays.size()));
      std::printf("  %s %.3f", drivers[k].label, rms);
    }
    std::printf("\n");
  }

  std::printf(
      "\n  Shape checks: all drivers produce the same family of knee-shaped\n"
      "  curves; the full model tracks the trace more closely than either\n"
      "  reduced variant (both long-range dependence AND the heavy tail\n"
      "  matter); the curves converge as N grows.\n");
  return 0;
}
