// bench_engine_scaling: thread-scaling throughput of the parallel
// generation engine, emitted as JSON for dashboards/CI.
//
// For each thread count the same GenerationPlan (default: 16 sources of
// 2^17 frames, the paper's model parameters) is executed and frames/sec and
// bytes/sec recorded. A FNV-1a hash over the raw double bits of every
// generated frame doubles as the determinism witness: the engine guarantees
// bit-identical output for any thread count, so all runs must report the
// same checksum. A final pair of campaign runs — identical except that one
// checkpoints at the default interval — measures the checkpoint overhead
// the crash-safe runner charges for resumability (budget: <= 5%).
//
// Usage:
//   ./bench_engine_scaling [sources] [frames_per_source] [thread_list]
// e.g. ./bench_engine_scaling 16 131072 1,2,4,8
#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "vbr/common/checksum.hpp"
#include "vbr/engine/engine.hpp"
#include "vbr/run/campaign.hpp"

namespace {

std::uint64_t fnv1a_trace_hash(const vbr::engine::MultiSourceTrace& trace) {
  vbr::Fnv1a hash;
  for (const auto& source : trace.sources) hash.update(source);
  return hash.digest();
}

double timed_campaign_seconds(const vbr::run::CampaignOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  (void)vbr::run::run_campaign(options);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// printf-style append to the JSON document under construction. The whole
// document is built in memory and emitted in one shot — to stdout and, when
// VBR_BENCH_JSON_DIR is set, atomically to BENCH_engine_scaling.json — so an
// interrupted run can never leave a truncated file.
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int len = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (len > 0) out.append(buf, std::min(static_cast<std::size_t>(len), sizeof buf - 1));
}

std::vector<std::size_t> parse_thread_list(const char* arg) {
  std::vector<std::size_t> threads;
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) threads.push_back(std::stoul(token));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  vbr::engine::GenerationPlan plan;
  plan.num_sources = (argc > 1) ? std::stoul(argv[1]) : 16;
  plan.frames_per_source = (argc > 2) ? std::stoul(argv[2]) : (std::size_t{1} << 17);
  plan.seed = 1994;
  plan.params.hurst = 0.8;
  plan.params.marginal.mu_gamma = 27791.0;
  plan.params.marginal.sigma_gamma = 6254.0;
  plan.params.marginal.tail_slope = 12.0;

  const std::vector<std::size_t> thread_counts =
      (argc > 3) ? parse_thread_list(argv[3]) : std::vector<std::size_t>{1, 2, 4, 8};

  std::string json;
  appendf(json, "{\n");
  appendf(json, "  \"benchmark\": \"engine_scaling\",\n");
  appendf(json, "  \"sources\": %zu,\n", plan.num_sources);
  appendf(json, "  \"frames_per_source\": %zu,\n", plan.frames_per_source);
  appendf(json, "  \"hardware_concurrency\": %u,\n", std::thread::hardware_concurrency());
  appendf(json, "  \"contracts\": \"%s\",\n", vbrbench::contracts_state());
  appendf(json, "  \"results\": [\n");

  double baseline_fps = 0.0;
  std::uint64_t baseline_hash = 0;
  bool bit_identical = true;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    plan.threads = thread_counts[i];
    const auto trace = vbr::engine::generate_sources(plan);
    const auto& stats = trace.stats;
    const std::uint64_t hash = fnv1a_trace_hash(trace);
    if (i == 0) {
      baseline_fps = stats.frames_per_second();
      baseline_hash = hash;
    } else if (hash != baseline_hash) {
      bit_identical = false;
    }
    appendf(
        json,
        "    {\"threads\": %zu, \"threads_used\": %zu, \"wall_seconds\": %.6f, "
        "\"frames_per_second\": %.1f, \"bytes_per_second\": %.1f, "
        "\"speedup_vs_first\": %.3f, \"trace_hash\": \"%016llx\"}%s\n",
        thread_counts[i], stats.threads_used, stats.wall_seconds, stats.frames_per_second(),
        stats.bytes_per_second(),
        baseline_fps > 0.0 ? stats.frames_per_second() / baseline_fps : 0.0,
        static_cast<unsigned long long>(hash),
        i + 1 < thread_counts.size() ? "," : "");
  }

  appendf(json, "  ],\n");

  // Checkpoint overhead: identical campaigns to scratch files, one without a
  // checkpoint path and one checkpointing every 2 sources (more frequent
  // than the default, so the measurement is an upper bound on the default).
  const auto scratch = std::filesystem::temp_directory_path();
  vbr::run::CampaignOptions campaign;
  campaign.plan = plan;
  campaign.plan.threads = thread_counts.back();
  campaign.trace_path = scratch / "bench_engine_scaling_campaign.trace";
  campaign.checkpoint_path.clear();
  const double plain_seconds = timed_campaign_seconds(campaign);
  campaign.checkpoint_path = scratch / "bench_engine_scaling_campaign.ckpt";
  campaign.checkpoint_every_sources = 2;
  const double checkpointed_seconds = timed_campaign_seconds(campaign);
  const double overhead =
      plain_seconds > 0.0 ? checkpointed_seconds / plain_seconds - 1.0 : 0.0;
  std::error_code cleanup;
  std::filesystem::remove(campaign.trace_path, cleanup);
  std::filesystem::remove(campaign.checkpoint_path, cleanup);
  appendf(json,
          "  \"checkpoint_overhead\": {\"plain_seconds\": %.6f, "
          "\"checkpointed_seconds\": %.6f, \"overhead_fraction\": %.4f, "
          "\"checkpoint_every_sources\": %zu},\n",
          plain_seconds, checkpointed_seconds, overhead,
          campaign.checkpoint_every_sources);

  appendf(json, "  \"bit_identical_across_thread_counts\": %s\n",
          bit_identical ? "true" : "false");
  appendf(json, "}\n");
  std::fputs(json.c_str(), stdout);
  vbrbench::emit_bench_json("engine_scaling", json);
  return bit_identical ? 0 : 1;
}
