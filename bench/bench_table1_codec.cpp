// Table 1: parameters for generating the VBR video trace.
//
// The paper's table documents the coding pipeline (DCT, run-length,
// Huffman; 480x504 monochrome at 24 fps, 30 slices/frame) and the resulting
// average bandwidth (5.34 Mb/s) and compression ratio (8.70). We exercise
// the same pipeline end to end: a scene-structured synthetic movie is coded
// by the real intraframe coder; a short full-geometry segment verifies the
// paper's frame format, and a longer reduced-geometry run (scaled per-pixel)
// measures rate statistics over many scenes.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/codec/intraframe_coder.hpp"
#include "vbr/codec/synthetic_movie.hpp"
#include "vbr/trace/time_series.hpp"

int main() {
  vbrbench::print_exhibit_header("Table 1", "parameters for generating the VBR trace");

  std::printf("  %-28s %s\n", "Coding algorithms", "DCT, Run-length, Huffman");
  std::printf("  %-28s %zu x %zu pels, 8 bits/pel (monochrome)\n", "Frame dimensions",
              vbr::codec::Frame::kDefaultHeight, vbr::codec::Frame::kDefaultWidth);
  std::printf("  %-28s %d per second\n", "Frame rate", 24);
  std::printf("  %-28s %d per frame\n", "Slice rate", 30);

  // Full-geometry segment: the paper's exact frame format.
  vbr::codec::MovieConfig full_config;  // defaults to 504x480
  const std::size_t full_frames = 24;
  vbr::codec::SyntheticMovie full_movie(full_config, full_frames);
  vbr::codec::IntraframeCoder coder;
  std::vector<vbr::codec::Frame> sample{full_movie.frame(0), full_movie.frame(12)};
  coder.train(sample);

  double total_bytes = 0.0;
  double total_ratio = 0.0;
  for (std::size_t f = 0; f < full_frames; ++f) {
    const auto frame = full_movie.frame(f);
    const auto encoded = coder.encode(frame);
    total_bytes += static_cast<double>(encoded.total_bytes());
    total_ratio += vbr::codec::IntraframeCoder::compression_ratio(frame, encoded);
  }
  const double mean_bytes = total_bytes / static_cast<double>(full_frames);
  const double mean_rate_mbps = mean_bytes * 8.0 * 24.0 / 1e6;
  const double mean_ratio = total_ratio / static_cast<double>(full_frames);

  std::printf("\n  Full-geometry segment (%zu frames, 504x480):\n", full_frames);
  vbrbench::print_paper_vs_measured("avg bandwidth (Mb/s)", 5.34, mean_rate_mbps);
  vbrbench::print_paper_vs_measured("avg compression ratio", 8.70, mean_ratio);

  // Longer reduced-geometry run: rate variability across many scenes.
  vbr::codec::MovieConfig small_config;
  small_config.width = 128;
  small_config.height = 128;
  const std::size_t small_frames = 1440;  // one minute
  vbr::codec::SyntheticMovie small_movie(small_config, small_frames);
  vbr::codec::IntraframeCoder small_coder;
  std::vector<vbr::codec::Frame> small_sample;
  for (std::size_t f = 0; f < small_frames; f += 180) {
    small_sample.push_back(small_movie.frame(f));
  }
  small_coder.train(small_sample);

  std::vector<double> bytes;
  bytes.reserve(small_frames);
  for (std::size_t f = 0; f < small_frames; ++f) {
    bytes.push_back(
        static_cast<double>(small_coder.encode(small_movie.frame(f)).total_bytes()));
  }
  const vbr::trace::TimeSeries trace(bytes, 1.0 / 24.0, "bytes/frame");
  const auto s = trace.summary();
  const double pixel_scale = 128.0 * 128.0 / (504.0 * 480.0);
  std::printf("\n  Reduced-geometry run (%zu frames, 128x128; rates scaled by area):\n",
              small_frames);
  std::printf("  %-36s %10.3f Mb/s (full-frame equivalent %.2f)\n", "mean rate",
              trace.mean_rate_bps() / 1e6, trace.mean_rate_bps() / 1e6 / pixel_scale);
  std::printf("  %-36s %10.3f\n", "coefficient of variation",
              s.coefficient_of_variation);
  std::printf("  %-36s %10.2f\n", "peak/mean (burstiness)", s.peak_to_mean);
  std::printf("  %-36s %10zu\n", "scenes traversed", small_movie.scenes().size());

  std::printf(
      "\n  Shape check: an intraframe DCT/RLE/Huffman code over scene-structured\n"
      "  material is variable-rate with O(1) Mb/s magnitude, single-digit\n"
      "  compression, and burstiness well above 1 -- the Table 1 regime.\n");
  return 0;
}
