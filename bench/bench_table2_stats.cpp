// Table 2: statistics of the VBR video trace, measured by frame and slice.
#include <cstdio>

#include "bench_support.hpp"
#include "vbr/model/starwars_surrogate.hpp"

int main() {
  vbrbench::print_exhibit_header("Table 2", "statistics of the VBR video trace");
  const auto& trace = vbrbench::full_trace();
  const auto slices = vbr::model::surrogate_slices(trace);

  const auto f = trace.frames.summary();
  const auto s = slices.summary();

  std::printf("\n  %-28s %12s %12s\n", "Measured by:", "Frame", "Slice");
  std::printf("  %-28s %12.3f %12.4f  msec\n", "Time unit",
              trace.frames.dt_seconds() * 1e3, slices.dt_seconds() * 1e3);
  std::printf("  %-28s %12.0f %12.1f  bytes/unit\n", "Mean bandwidth", f.mean, s.mean);
  std::printf("  %-28s %12.0f %12.1f  bytes/unit\n", "Standard deviation", f.stddev,
              s.stddev);
  std::printf("  %-28s %12.2f %12.2f\n", "Coef. of variation",
              f.coefficient_of_variation, s.coefficient_of_variation);
  std::printf("  %-28s %12.0f %12.0f  bytes/unit\n", "Maximum bandwidth", f.max, s.max);
  std::printf("  %-28s %12.0f %12.0f  bytes/unit\n", "Minimum bandwidth", f.min, s.min);
  std::printf("  %-28s %12.2f %12.2f\n", "Peak/mean bandwidth", f.peak_to_mean,
              s.peak_to_mean);

  std::printf("\n  Paper values (frame / slice):\n");
  vbrbench::print_paper_vs_measured("frame mean (bytes)", 27791, f.mean);
  vbrbench::print_paper_vs_measured("frame std dev (bytes)", 6254, f.stddev);
  vbrbench::print_paper_vs_measured("frame CoV", 0.23, f.coefficient_of_variation);
  vbrbench::print_paper_vs_measured("frame max (bytes)", 78459, f.max);
  vbrbench::print_paper_vs_measured("frame min (bytes)", 8622, f.min);
  vbrbench::print_paper_vs_measured("frame peak/mean", 2.82, f.peak_to_mean);
  vbrbench::print_paper_vs_measured("slice mean (bytes)", 926.4, s.mean);
  vbrbench::print_paper_vs_measured("slice std dev (bytes)", 289.5, s.stddev);
  vbrbench::print_paper_vs_measured("slice CoV", 0.31, s.coefficient_of_variation);
  vbrbench::print_paper_vs_measured("slice peak/mean", 3.96, s.peak_to_mean);
  return 0;
}
