#include "bench_support.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <system_error>

#include "vbr/common/atomic_file.hpp"
#include "vbr/common/error.hpp"

namespace vbrbench {

const vbr::model::SurrogateTrace& full_trace() {
  static const vbr::model::SurrogateTrace trace = [] {
    vbr::model::SurrogateOptions options;
    options.frames = kPaperFrames;
    if (const char* env = std::getenv("VBR_BENCH_FRAMES")) {
      options.frames = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    }
    std::printf("[surrogate] generating %zu-frame calibrated trace (seed %llu)...\n",
                options.frames, static_cast<unsigned long long>(options.seed));
    auto result = vbr::model::make_starwars_surrogate(options);
    std::printf("[surrogate] done: Pareto tail slope calibrated to m_T = %.2f\n",
                result.calibration.marginal.tail_slope);
    return result;
  }();
  return trace;
}

std::vector<double> log_values(std::span<const double> values) {
  std::vector<double> out(values.begin(), values.end());
  for (auto& v : out) v = std::log(v);
  return out;
}

void print_exhibit_header(const std::string& exhibit, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s -- %s\n", exhibit.c_str(), description.c_str());
  std::printf("================================================================\n");
}

void print_paper_vs_measured(const std::string& quantity, double paper, double measured) {
  std::printf("  %-36s paper %10.4g   measured %10.4g\n", quantity.c_str(), paper,
              measured);
}

const char* contracts_state() {
#if VBR_DCHECK_ENABLED
  return "on";
#else
  return "off";
#endif
}

void write_json_atomic(const std::filesystem::path& path, const std::string& json) {
  // Temp-file + rename semantics live in vbr::write_file_atomic, shared with
  // the campaign checkpoint writer; domain lint R6 enforces the routing.
  vbr::write_file_atomic(path, json);
}

void emit_bench_json(const std::string& name, const std::string& json) {
  const char* dir = std::getenv("VBR_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // rename below reports failure
  const auto path = std::filesystem::path(dir) / ("BENCH_" + name + ".json");
  write_json_atomic(path, json);
  std::fprintf(stderr, "[bench] wrote %s\n", path.string().c_str());
}

}  // namespace vbrbench
