// Figure 11: variance-time plot — normalized Var(X^(m)) against m on
// log-log axes. The reference slope -1 is the SRD line; the trace's
// limiting slope -beta with beta < 1 gives H = 1 - beta/2 ~ 0.78.
#include <cmath>
#include <cstdio>

#include "bench_support.hpp"
#include "vbr/stats/variance_time.hpp"

int main() {
  vbrbench::print_exhibit_header("Figure 11", "variance-time plot");
  const auto& trace = vbrbench::full_trace();

  vbr::stats::VarianceTimeOptions options;
  options.fit_min_m = 200;
  options.grid_points = 30;
  const auto result = vbr::stats::variance_time(trace.frames.samples(), options);

  std::printf("\n  %10s %16s %16s %16s\n", "m", "Var(X^m)/Var(X)", "SRD slope -1",
              "fit slope");
  for (const auto& point : result.points) {
    const double m = static_cast<double>(point.m);
    const double srd_line = 1.0 / m;
    const double fit_line =
        std::pow(10.0, result.fit.intercept + result.fit.slope * std::log10(m));
    std::printf("  %10zu %16.5e %16.5e %16.5e\n", point.m, point.normalized_variance,
                srd_line, fit_line);
  }

  std::printf("\n  fitted slope  beta = %.3f (stderr %.3f, R^2 = %.3f)\n", result.beta,
              result.fit.slope_stderr, result.fit.r_squared);
  vbrbench::print_paper_vs_measured("H = 1 - beta/2", 0.78, result.hurst);
  std::printf(
      "\n  Shape check: the points fall on a straight line with slope clearly\n"
      "  shallower than the dotted -1 reference (beta = %.2f < 1), the defining\n"
      "  variance-time signature of LRD.\n",
      result.beta);
  return 0;
}
