// Figure 7: autocorrelation function of the frame data to lag 10,000 —
// exponential-looking up to ~100-300 lags, then decaying far more slowly
// (hyperbolically), the time-domain signature of LRD.
#include <cstdio>

#include "bench_support.hpp"
#include "vbr/stats/autocorrelation.hpp"

int main() {
  vbrbench::print_exhibit_header("Figure 7", "autocorrelation to lag 10,000");
  const auto& trace = vbrbench::full_trace();
  const auto data = trace.frames.samples();
  const std::size_t max_lag = std::min<std::size_t>(10000, data.size() / 4);
  const auto acf = vbr::stats::autocorrelation(data, max_lag);

  std::printf("\n  %8s %10s\n", "lag", "r(lag)");
  for (std::size_t lag : {1u,    2u,    5u,    10u,   20u,   50u,   100u,  200u,
                          300u,  500u,  700u,  1000u, 1500u, 2000u, 3000u, 5000u,
                          7000u, 10000u}) {
    if (lag > max_lag) break;
    std::printf("  %8zu %10.4f\n", lag, acf[lag]);
  }

  const double rho = vbr::stats::fit_exponential_decay(acf, 1, 100);
  const double beta = vbr::stats::fit_hyperbolic_decay(
      acf, 300, std::min<std::size_t>(5000, max_lag));
  std::printf("\n  exponential fit over lags 1-100:     r(n) ~ %.4f^n\n", rho);
  std::printf("  hyperbolic fit over lags 300-5000:   r(n) ~ n^-%.3f  (H = %.3f)\n", beta,
              1.0 - beta / 2.0);

  // If the early exponential continued, r would be invisible by lag 1000.
  double extrapolated = 1.0;
  for (int i = 0; i < 1000; ++i) extrapolated *= rho;
  std::printf(
      "\n  Shape check: extrapolating the early exponential to lag 1000 predicts\n"
      "  r = %.1e, but the measured value is %.3f -- orders of magnitude larger.\n"
      "  Correlations persist far beyond any exponential horizon (LRD).\n",
      extrapolated, acf[std::min<std::size_t>(1000, max_lag)]);
  return 0;
}
