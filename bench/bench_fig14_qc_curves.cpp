// Figure 14: behavior of statistically multiplexed video sources — maximum
// buffer delay T_max = Q/(NC) against allocated bandwidth per source C/N,
// for N = 1, 2, 5, 20 and several QOS targets (P_l = 0, 1e-4, 3e-6;
// P_l-WES = 1e-3, 3e-2).
//
// Expected shape: a strong knee; bandwidth insensitive to buffer until the
// delay shrinks to a few ms; looser loss targets need visibly less
// capacity (large gap between P_l = 0 and P_l = 1e-4, especially at N = 1);
// WES curves interleave consistently with overall-loss curves.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/model/starwars_surrogate.hpp"
#include "vbr/net/qc_analysis.hpp"

int main() {
  vbrbench::print_exhibit_header("Figure 14", "Q-C curves per N and loss target");
  const auto& trace = vbrbench::full_trace();
  const auto frames = trace.frames.samples();

  struct Target {
    const char* label;
    double loss;
    vbr::net::QosMeasure measure;
  };
  const std::vector<Target> targets{
      {"P_l = 0", 0.0, vbr::net::QosMeasure::kOverallLoss},
      {"P_l = 3e-6", 3e-6, vbr::net::QosMeasure::kOverallLoss},
      {"P_l = 1e-4", 1e-4, vbr::net::QosMeasure::kOverallLoss},
      {"P_l-WES = 1e-3", 1e-3, vbr::net::QosMeasure::kWorstErroredSecond},
      {"P_l-WES = 3e-2", 3e-2, vbr::net::QosMeasure::kWorstErroredSecond},
  };
  // T_max grid: 0.5 ms .. 1 s (log-spaced), the range of the paper's plot.
  const std::vector<double> delays{0.0005, 0.001, 0.002, 0.005, 0.02, 0.1, 0.4, 1.0};

  for (std::size_t sources : {1u, 2u, 5u, 20u}) {
    vbr::net::MuxExperiment experiment;
    experiment.sources = sources;
    experiment.replications = (sources > 2) ? 3 : 1;
    const vbr::net::MuxWorkload workload(frames, experiment);
    std::printf("\n  N = %zu  (per-source mean %.2f Mb/s, peak %.2f Mb/s)\n", sources,
                workload.source_mean_rate_bps() / 1e6,
                workload.source_peak_rate_bps() / 1e6);
    std::printf("  %14s", "T_max (ms)");
    for (const auto& t : targets) std::printf(" %14s", t.label);
    std::printf("\n");

    std::vector<std::vector<double>> capacity(delays.size(),
                                              std::vector<double>(targets.size()));
    for (std::size_t ti = 0; ti < targets.size(); ++ti) {
      const auto curve = vbr::net::qc_curve(workload, delays, targets[ti].loss,
                                            targets[ti].measure);
      for (std::size_t di = 0; di < delays.size(); ++di) {
        capacity[di][ti] = curve[di].capacity_per_source_bps;
      }
    }
    for (std::size_t di = 0; di < delays.size(); ++di) {
      std::printf("  %14.1f", delays[di] * 1e3);
      for (std::size_t ti = 0; ti < targets.size(); ++ti) {
        std::printf(" %11.3f Mb", capacity[di][ti] / 1e6);
      }
      std::printf("\n");
    }

    // Knee location for the strictest curve.
    std::vector<vbr::net::QcPoint> zero_curve;
    for (std::size_t di = 0; di < delays.size(); ++di) {
      zero_curve.push_back({delays[di], capacity[di][0]});
    }
    const auto knee = vbr::net::knee_index(zero_curve);
    std::printf("  knee of the P_l = 0 curve near T_max = %.1f ms\n",
                zero_curve[knee].max_delay_seconds * 1e3);
  }

  // ---- Slice-granularity runs -------------------------------------------
  // The paper simulates slice data (1.389 ms units) as well as frame data:
  // intra-frame rate variation is what makes buffers below one frame time
  // matter, producing the steep small-buffer knee of Fig. 14. The fluid
  // model at frame granularity flattens that regime, so we re-run N = 1 and
  // N = 5 on the slice trace.
  const auto slices = vbr::model::surrogate_slices(trace);
  std::printf("\n  --- slice-granularity (dt = %.3f ms) ---\n",
              slices.dt_seconds() * 1e3);
  const std::vector<double> slice_delays{0.0005, 0.001, 0.002, 0.005, 0.02, 0.1};
  for (std::size_t sources : {1u, 5u}) {
    vbr::net::MuxExperiment experiment;
    experiment.sources = sources;
    experiment.replications = (sources > 2) ? 3 : 1;
    experiment.dt_seconds = slices.dt_seconds();
    experiment.min_lag_separation = 1000 * 30;  // 1000 frames, in slices
    const vbr::net::MuxWorkload workload(slices.samples(), experiment);
    std::printf("\n  N = %zu (slice data)\n  %14s %14s %14s\n", sources, "T_max (ms)",
                "P_l = 0", "P_l = 1e-4");
    for (double delay : slice_delays) {
      const double c0 = vbr::net::required_capacity_bps(
          workload, delay, 0.0, vbr::net::QosMeasure::kOverallLoss);
      const double c4 = vbr::net::required_capacity_bps(
          workload, delay, 1e-4, vbr::net::QosMeasure::kOverallLoss);
      std::printf("  %14.1f %11.3f Mb %11.3f Mb\n", delay * 1e3, c0 / 1e6, c4 / 1e6);
    }
  }

  std::printf(
      "\n  Shape checks: (i) every curve has a knee -- capacity is flat in the\n"
      "  buffer until T_max drops to a few ms, then rises steeply; (ii) the\n"
      "  stricter the loss target the higher the curve, with a substantial\n"
      "  P_l=0 vs P_l=1e-4 gap at N=1 that shrinks with multiplexing; (iii) the\n"
      "  WES-targeted curves fall in the same family and ordering (the paper's\n"
      "  argument that P_l predicts P_l-WES).\n");
  return 0;
}
