// Extension (Conclusions): "An obvious extension of this work will be to
// analyse more movies of the same and different types to determine the
// consistency and generality of these results."
//
// Section 3.2.3 already sketches the expected landscape: video conferencing
// tends to H ~ 0.60-0.75, action movies ~0.8, and computer traffic "can be
// much more active, with measured H-values often close to unity". We
// synthesize one source of each type with the four-parameter model, run the
// full estimator battery blind, and check that the types separate — i.e.,
// H works as the "rough indication of scene activity" the paper proposes.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/model/vbr_source.hpp"
#include "vbr/net/qc_analysis.hpp"
#include "vbr/stats/dfa.hpp"
#include "vbr/stats/variance_time.hpp"
#include "vbr/stats/whittle.hpp"

namespace {

struct SourceType {
  const char* label;
  double hurst;
  double mean;       // bytes/frame
  double cov;        // sigma/mu
  double tail_slope;
};

}  // namespace

int main() {
  vbrbench::print_exhibit_header("Extension (Sec. 6)",
                                 "more 'movies': source types separated by H");
  // The paper's qualitative taxonomy (Section 3.2.3).
  const std::vector<SourceType> types{
      {"video conference", 0.65, 4000.0, 0.15, 15.0},
      {"drama movie", 0.75, 18000.0, 0.20, 13.0},
      {"action movie", 0.80, 27791.0, 0.23, 13.0},
      {"computer traffic", 0.93, 12000.0, 0.60, 6.0},
  };
  const std::size_t frames = 131072;

  std::printf("\n  %-18s %6s | %8s %8s %8s | %14s\n", "source type", "true H", "VT",
              "Whittle", "DFA", "SMG@5 (2ms)");
  for (const auto& type : types) {
    vbr::model::VbrModelParams params;
    params.hurst = type.hurst;
    params.marginal.mu_gamma = type.mean;
    params.marginal.sigma_gamma = type.cov * type.mean;
    params.marginal.tail_slope = type.tail_slope;
    const vbr::model::VbrVideoSourceModel model(params);
    vbr::Rng rng(4242);
    const auto x = model.generate(frames, rng);

    // Blind estimator battery.
    vbr::stats::VarianceTimeOptions vt;
    vt.fit_min_m = 50;
    const double h_vt = vbr::stats::variance_time(x, vt).hurst;
    std::vector<double> logs(x.begin(), x.end());
    for (auto& v : logs) v = std::log(v);
    const double h_wh =
        vbr::stats::whittle_estimate(vbr::block_means(logs, frames / 512),
                                     vbr::stats::SpectralModel::kFgn)
            .hurst;
    vbr::stats::DfaOptions dfa_opt;
    dfa_opt.fit_min_box = 50;
    const double h_dfa = vbr::stats::dfa(x, dfa_opt).hurst;

    // Engineering consequence: multiplexing gain at N = 5, T_max = 2 ms.
    vbr::net::MuxExperiment experiment;
    experiment.sources = 5;
    experiment.replications = 3;
    experiment.min_lag_separation = 500;
    const vbr::net::MuxWorkload workload(x, experiment);
    const double c5 = vbr::net::required_capacity_bps(workload, 0.002, 1e-3,
                                                      vbr::net::QosMeasure::kOverallLoss);
    const double gain = (workload.source_peak_rate_bps() - c5) /
                        (workload.source_peak_rate_bps() - workload.source_mean_rate_bps());

    std::printf("  %-18s %6.2f | %8.3f %8.3f %8.3f | %13.0f%%\n", type.label, type.hurst,
                h_vt, h_wh, h_dfa, 100.0 * gain);
  }

  std::printf(
      "\n  Shape check: the blind estimates order the four source types\n"
      "  exactly as their construction H does -- H separates conferencing,\n"
      "  film and computer-like traffic (the paper's 'rough indication of\n"
      "  scene activity') -- while the heavy-tailed, high-H sources show\n"
      "  slightly weaker multiplexing gain, consistent with the conclusions'\n"
      "  remark that H alone is necessary but not sufficient for burstiness.\n");
  return 0;
}
