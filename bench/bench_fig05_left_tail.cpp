// Figure 5: log-log CDF of the left tail — unlike the right tail it is NOT
// heavy; the Gamma fit is adequate at the low end while the Normal
// overshoots (assigns mass to impossible small/negative rates).
#include <cstdio>

#include "bench_support.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/stats/descriptive.hpp"
#include "vbr/stats/distributions.hpp"

int main() {
  vbrbench::print_exhibit_header("Figure 5", "log-log CDF (left tail) vs fitted models");
  const auto& trace = vbrbench::full_trace();
  const auto data = trace.frames.samples();

  const auto normal = vbr::stats::NormalDistribution::fit(data);
  const auto gamma = vbr::stats::GammaDistribution::fit(data);
  const auto lognormal = vbr::stats::LognormalDistribution::fit(data);
  const vbr::stats::Ecdf ecdf(data);

  std::printf("\n  %9s %10s %10s %10s %10s\n", "x (bytes)", "empirical", "Normal",
              "Gamma", "Lognormal");
  const auto grid = vbr::log_spaced(ecdf.sorted().front(), ecdf.quantile(0.5), 24);
  for (double x : grid) {
    const double emp = ecdf.cdf(x);
    if (emp <= 0.0) continue;
    std::printf("  %9.0f %10.2e %10.2e %10.2e %10.2e\n", x, emp, normal.cdf(x),
                gamma.cdf(x), lognormal.cdf(x));
  }

  const double q001 = ecdf.quantile(0.001);
  std::printf(
      "\n  Shape check at the 0.1%% quantile (%.0f bytes): Gamma %.1e is within an\n"
      "  order of magnitude of the empirical 1.0e-03, while the Normal (%.1e)\n"
      "  misses -- and the left tail shows none of the right tail's heaviness,\n"
      "  motivating the asymmetric Gamma-body/Pareto-tail hybrid.\n",
      q001, gamma.cdf(q001), normal.cdf(q001));
  return 0;
}
