// Figure 15: required capacity allocation per source against the number of
// multiplexed sources, with buffers fixed at T_max = 2 ms. The capacity
// falls from near the peak rate (N = 1) toward the mean rate (N = 20); the
// paper finds ~72% of the achievable statistical multiplexing gain already
// realized at N = 5.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/net/qc_analysis.hpp"

int main() {
  vbrbench::print_exhibit_header("Figure 15",
                                 "statistical multiplexing gain at T_max = 2 ms");
  const auto& trace = vbrbench::full_trace();
  const auto frames = trace.frames.samples();
  const double delay = 0.002;

  struct Target {
    const char* label;
    double loss;
  };
  const std::vector<Target> targets{
      {"P_l = 0", 0.0}, {"P_l = 3e-6", 3e-6}, {"P_l = 1e-4", 1e-4}, {"P_l = 1e-3", 1e-3}};
  const std::vector<std::size_t> source_counts{1, 2, 3, 5, 10, 20};

  double mean_bps = 0.0;
  double peak_bps = 0.0;
  std::printf("\n  %8s", "N");
  for (const auto& t : targets) std::printf(" %14s", t.label);
  std::printf("   (capacity per source, Mb/s)\n");

  std::vector<double> gain_at_5;
  for (std::size_t n : source_counts) {
    vbr::net::MuxExperiment experiment;
    experiment.sources = n;
    experiment.replications = (n > 2) ? 6 : 1;  // the paper's six lag draws
    const vbr::net::MuxWorkload workload(frames, experiment);
    mean_bps = workload.source_mean_rate_bps();
    peak_bps = workload.source_peak_rate_bps();

    std::printf("  %8zu", n);
    for (const auto& t : targets) {
      const double c = vbr::net::required_capacity_bps(workload, delay, t.loss,
                                                       vbr::net::QosMeasure::kOverallLoss);
      std::printf(" %14.3f", c / 1e6);
      if (n == 5) gain_at_5.push_back((peak_bps - c) / (peak_bps - mean_bps));
    }
    std::printf("\n");
  }
  std::printf("  %8s %14.3f  <- per-source mean rate (the N -> inf floor)\n", "mean",
              mean_bps / 1e6);
  std::printf("  %8s %14.3f  <- per-source peak rate (the N = 1 ceiling)\n", "peak",
              peak_bps / 1e6);

  double avg_gain = 0.0;
  for (double g : gain_at_5) avg_gain += g;
  avg_gain /= static_cast<double>(gain_at_5.size());
  std::printf("\n  SMG realized at N = 5 (averaged over loss targets):\n");
  vbrbench::print_paper_vs_measured("fraction of peak-mean gap closed", 0.72, avg_gain);

  std::printf(
      "\n  Shape check: the allocation starts near the peak rate for a single\n"
      "  source and decays toward the mean as N grows -- statistical\n"
      "  multiplexing remains effective despite the long-range dependence,\n"
      "  with most of the gain realized by a handful of sources.\n");
  return 0;
}
