// Figure 6: probability density of the trace data compared to the hybrid
// Gamma/Pareto model — the model tracks both the bell-shaped body and the
// heavy right tail.
#include <cstdio>

#include "bench_support.hpp"
#include "vbr/stats/descriptive.hpp"
#include "vbr/stats/gamma_pareto.hpp"

int main() {
  vbrbench::print_exhibit_header("Figure 6", "empirical density vs Gamma/Pareto model");
  const auto& trace = vbrbench::full_trace();
  const auto data = trace.frames.samples();

  const auto params = vbr::stats::GammaParetoDistribution::fit(data);
  const vbr::stats::GammaParetoDistribution model(params);
  std::printf("\n  fitted: mu_Gamma=%.0f  sigma_Gamma=%.0f  m_T=%.2f  splice x_th=%.0f\n",
              params.mu_gamma, params.sigma_gamma, params.tail_slope, model.threshold());

  const auto hist = vbr::stats::make_histogram(data, 40, 5000.0, 85000.0);
  std::printf("\n  %13s %12s %12s %8s\n", "bin (bytes)", "empirical pdf", "model pdf",
              "ratio");
  double worst_body_ratio = 1.0;
  for (std::size_t b = 0; b < hist.counts.size(); ++b) {
    const double x = hist.bin_center(b);
    const double emp = hist.density(b);
    const double mod = model.pdf(x);
    if (emp <= 0.0 && mod < 1e-12) continue;
    const double ratio = (mod > 0.0 && emp > 0.0) ? emp / mod : 0.0;
    std::printf("  %6.0f-%6.0f %12.3e %12.3e %8.2f\n",
                hist.lo + hist.bin_width() * static_cast<double>(b),
                hist.lo + hist.bin_width() * static_cast<double>(b + 1), emp, mod, ratio);
    // Track agreement over the well-populated body (10th..99th percentile).
    if (emp > 1e-6 && ratio > 0.0) {
      worst_body_ratio = std::max(worst_body_ratio, std::max(ratio, 1.0 / ratio));
    }
  }
  std::printf(
      "\n  Shape check: empirical and model densities agree within a factor of\n"
      "  %.2f over the populated bins, including the right-tail region beyond\n"
      "  the splice at %.0f bytes.\n",
      worst_body_ratio, model.threshold());
  return 0;
}
