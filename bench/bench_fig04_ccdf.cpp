// Figure 4: log-log complementary CDF of the frame data compared to the
// Normal, Gamma, Lognormal and Pareto models — the Gamma matches the body,
// every bell-shaped law underestimates the right tail, and the Pareto's
// straight line tracks it.
#include <cmath>
#include <cstdio>

#include "bench_support.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/stats/descriptive.hpp"
#include "vbr/stats/distributions.hpp"
#include "vbr/stats/gamma_pareto.hpp"
#include "vbr/stats/goodness_of_fit.hpp"

int main() {
  vbrbench::print_exhibit_header(
      "Figure 4", "log-log CCDF (right tail) vs Normal/Gamma/Lognormal/Pareto");
  const auto& trace = vbrbench::full_trace();
  const auto data = trace.frames.samples();

  const auto normal = vbr::stats::NormalDistribution::fit(data);
  const auto gamma = vbr::stats::GammaDistribution::fit(data);
  const auto lognormal = vbr::stats::LognormalDistribution::fit(data);
  const auto pareto = vbr::stats::ParetoDistribution::fit_tail(data, 0.03);
  const vbr::stats::GammaParetoDistribution hybrid(
      vbr::stats::GammaParetoDistribution::fit(data));

  const vbr::stats::Ecdf ecdf(data);
  std::printf("\n  fitted Pareto tail: k = %.0f, a (slope) = %.2f\n", pareto.k(),
              pareto.a());
  std::printf("\n  %9s %10s %10s %10s %10s %10s %10s\n", "x (bytes)", "empirical",
              "Normal", "Gamma", "Lognormal", "Pareto", "Gam/Par");
  const auto grid = vbr::log_spaced(ecdf.quantile(0.5), ecdf.sorted().back(), 28);
  for (double x : grid) {
    const double emp = ecdf.ccdf(x);
    if (emp <= 0.0) break;
    std::printf("  %9.0f %10.2e %10.2e %10.2e %10.2e %10.2e %10.2e\n", x, emp,
                normal.ccdf(x), gamma.ccdf(x), lognormal.ccdf(x),
                x > pareto.k() ? pareto.ccdf(x) : 1.0, hybrid.ccdf(x));
  }

  // Tail slope of the empirical CCDF over the top 3%..0.05% (log-log).
  const double q97 = ecdf.quantile(0.97);
  const double q9995 = ecdf.quantile(0.9995);
  const double emp_slope = (std::log(ecdf.ccdf(q9995)) - std::log(ecdf.ccdf(q97))) /
                           (std::log(q9995) - std::log(q97));
  std::printf("\n  empirical log-log tail slope: %.2f (Pareto fit: -%.2f)\n", emp_slope,
              pareto.a());

  // Quantitative ranking of the whole-distribution fits (KS distance).
  std::printf("\n  Kolmogorov-Smirnov distances (smaller = better fit):\n");
  std::printf("    %-14s %8.4f\n", "Normal", vbr::stats::ks_test(data, normal).statistic);
  std::printf("    %-14s %8.4f\n", "Gamma", vbr::stats::ks_test(data, gamma).statistic);
  std::printf("    %-14s %8.4f\n", "Lognormal",
              vbr::stats::ks_test(data, lognormal).statistic);
  std::printf("    %-14s %8.4f\n", "Gamma/Pareto",
              vbr::stats::ks_test(data, hybrid).statistic);

  const double far = ecdf.quantile(0.99995);
  std::printf(
      "\n  Shape check at x = %.0f: empirical CCDF %.1e; Pareto %.1e tracks it,\n"
      "  Gamma %.1e and Lognormal %.1e fall below, Normal %.1e is negligible --\n"
      "  the ordering of Fig. 4.\n",
      far, ecdf.ccdf(far), pareto.ccdf(far), gamma.ccdf(far), lognormal.ccdf(far),
      normal.ccdf(far));
  return 0;
}
