// Extension (Sec. 5.3 / [GARR93]): layered coding with priority queueing.
//
// Split the trace into a rate-capped base layer and an enhancement layer,
// run them through the shared-buffer space-priority queue, and sweep the
// channel capacity: the base layer stays essentially loss-free far below
// the capacity a single-class channel would need, because enhancement
// traffic absorbs the congestion.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/net/fluid_queue.hpp"
#include "vbr/net/priority_queue.hpp"

int main() {
  vbrbench::print_exhibit_header("Extension (Sec. 5.3)",
                                 "layered video with space-priority queueing");
  const auto& trace = vbrbench::full_trace();
  const auto frames = trace.frames.samples();
  const double dt = trace.frames.dt_seconds();
  const double mean_bytes = vbr::sample_mean(frames);

  // Base layer capped at the mean rate: guaranteed-quality layer ~77% of
  // traffic; bursts ride in the enhancement layer.
  const auto layers = vbr::net::split_layers(frames, mean_bytes);
  const double base_share =
      vbr::kahan_total(layers.high) / vbr::kahan_total(frames);
  std::printf("\n  base layer capped at the mean (%.0f bytes/frame): %.0f%% of traffic\n",
              mean_bytes, 100.0 * base_share);

  const double mean_rate = mean_bytes / dt;  // bytes/sec
  const double buffer = mean_rate * 0.002;   // ~2 ms at the mean rate

  std::printf("\n  %12s %14s %14s %14s\n", "capacity", "base loss", "enh. loss",
              "single-class");
  for (double load_factor : {1.30, 1.15, 1.05, 1.00, 0.95, 0.90}) {
    const double capacity = mean_rate * load_factor;
    const auto layered =
        vbr::net::run_layered_queue(layers.high, layers.low, dt, capacity, buffer);
    const auto single = vbr::net::run_fluid_queue(frames, dt, capacity, buffer);
    std::printf("  %9.2f Mb %14.3e %14.3e %14.3e\n", capacity * 8.0 / 1e6,
                layered.high_loss_rate(), layered.low_loss_rate(), single.loss_rate());
  }

  std::printf(
      "\n  Shape check: at capacities where a single-class channel already\n"
      "  loses 1e-3..1e-2 of ALL traffic, the priority discipline keeps the\n"
      "  base layer orders of magnitude cleaner by sacrificing enhancement\n"
      "  cells -- the graceful-degradation mechanism the paper's conclusions\n"
      "  recommend for real packet video.\n");
  return 0;
}
