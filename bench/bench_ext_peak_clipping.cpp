// Extension (Conclusions): peak clipping at the coder.
//
// "A few extremely high peaks exist in the data, which are problematic for
// the network. We recommend that a realistic VBR coder should clip such
// peaks, rather than send them into the network." This driver clips the
// trace at multiples of its mean and measures the deal: how little traffic
// (and how few frames) the clip touches versus how much network capacity
// it saves at a zero-loss allocation.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/net/qc_analysis.hpp"
#include "vbr/net/shaper.hpp"

namespace {

double zero_loss_capacity(std::span<const double> frames) {
  vbr::net::MuxExperiment experiment;
  experiment.sources = 1;
  const vbr::net::MuxWorkload workload(frames, experiment);
  return vbr::net::required_capacity_bps(workload, 0.002, 0.0,
                                         vbr::net::QosMeasure::kOverallLoss);
}

}  // namespace

int main() {
  vbrbench::print_exhibit_header("Extension (Sec. 6)", "peak clipping at the coder");
  const auto& trace = vbrbench::full_trace();
  const auto frames = trace.frames.samples();

  const double unclipped_capacity = zero_loss_capacity(frames);
  std::printf("\n  unclipped: peak/mean %.2f, zero-loss capacity %.2f Mb/s (T_max 2 ms)\n",
              trace.frames.summary().peak_to_mean, unclipped_capacity / 1e6);

  std::printf("\n  %10s %14s %14s %16s %14s\n", "clip level", "frames hit",
              "traffic cut", "capacity (Mb/s)", "saved");
  for (double multiple : {2.6, 2.2, 1.9, 1.6}) {
    const auto clip = vbr::net::clip_peaks(frames, multiple);
    const double capacity = zero_loss_capacity(clip.clipped);
    std::printf("  %7.1fx mu %13.3f%% %13.4f%% %16.2f %13.1f%%\n", multiple,
                100.0 * clip.frames_affected, 100.0 * clip.traffic_removed,
                capacity / 1e6, 100.0 * (1.0 - capacity / unclipped_capacity));
  }

  std::printf(
      "\n  Shape check: clipping at ~2x the mean touches well under 1%% of the\n"
      "  traffic (the coder would degrade those frames slightly instead of\n"
      "  shipping the burst) yet cuts the zero-loss capacity requirement by a\n"
      "  double-digit percentage -- 'a much better trade-off for the coder to\n"
      "  optimize its use of the available bandwidth'.\n");
  return 0;
}
