// Ablation (DESIGN.md #1): validity of the fluid-queue shortcut.
//
// The paper spaces cells uniformly within each slice/frame; with
// piecewise-constant arrival rates the FIFO sample path is piecewise
// linear, so the fluid simulation should agree with an explicit 48-byte
// cell-level simulation up to one-cell granularity. This driver measures
// that agreement across loads and buffer sizes, and quantifies the extra
// loss random (clumped) cell spacing causes at tiny buffers.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/net/cell_queue.hpp"
#include "vbr/net/fluid_queue.hpp"

int main() {
  vbrbench::print_exhibit_header("Ablation (Sec. 5.1)",
                                 "fluid queue vs cell-level simulation");
  const auto& trace = vbrbench::full_trace();
  // Cell-level runs are O(total cells); a 20k-frame window keeps this quick
  // while covering hundreds of scenes.
  const auto window = trace.frames.slice(30000, 20000);
  const double dt = window.dt_seconds();
  const double mean_rate = window.summary().mean / dt;  // bytes/sec

  std::printf("\n  window: %zu frames; mean load %.2f Mb/s\n", window.size(),
              mean_rate * 8.0 / 1e6);
  std::printf("\n  %10s %12s %14s %14s %14s\n", "load", "buffer", "fluid P_l",
              "cells uniform", "cells random");
  for (double load : {1.02, 1.05, 1.10}) {
    for (double buffer_ms : {1.0, 5.0, 20.0}) {
      const double capacity = mean_rate / load;
      const double buffer = capacity * buffer_ms * 1e-3;
      const auto fluid = vbr::net::run_fluid_queue(window.samples(), dt, capacity, buffer);
      vbr::Rng rng_u(1);
      vbr::Rng rng_r(2);
      const auto uniform = vbr::net::run_cell_queue(
          window.samples(), dt, capacity, buffer, vbr::net::CellSpacing::kUniform, rng_u);
      const auto random = vbr::net::run_cell_queue(
          window.samples(), dt, capacity, buffer, vbr::net::CellSpacing::kRandom, rng_r);
      std::printf("  %10.2f %9.0f ms %14.4e %14.4e %14.4e\n", load, buffer_ms,
                  fluid.loss_rate(), uniform.loss_rate(), random.loss_rate());
    }
  }
  std::printf(
      "\n  Shape check: fluid and uniform-spaced cell losses agree to within\n"
      "  cell granularity at every operating point (validating the O(#frames)\n"
      "  fluid shortcut used for the Q-C sweeps), while random spacing adds\n"
      "  modest extra loss only when the buffer is very small.\n");
  return 0;
}
