// Figure 12: pox diagram of R/S — rescaled adjusted range over a grid of
// lags and starting points; the asymptotic slope of log(R/S) vs log(lag)
// estimates H (~0.83 in the paper).
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_support.hpp"
#include "vbr/stats/rs_analysis.hpp"

int main() {
  vbrbench::print_exhibit_header("Figure 12", "pox diagram of R/S");
  const auto& trace = vbrbench::full_trace();

  vbr::stats::RsOptions options;
  options.lag_count = 25;
  options.partitions = 10;
  options.fit_min_lag = 200;
  const auto result = vbr::stats::rs_analysis(trace.frames.samples(), options);

  // Group the cloud by lag for compact printing.
  std::map<std::size_t, std::pair<double, double>> lo_hi;  // lag -> min/max R/S
  std::map<std::size_t, double> mean_rs;
  std::map<std::size_t, std::size_t> count;
  for (const auto& p : result.points) {
    auto [it, inserted] = lo_hi.try_emplace(p.lag, std::make_pair(p.rs, p.rs));
    if (!inserted) {
      it->second.first = std::min(it->second.first, p.rs);
      it->second.second = std::max(it->second.second, p.rs);
    }
    mean_rs[p.lag] += p.rs;
    ++count[p.lag];
  }

  std::printf("\n  %10s %10s %12s %12s %10s\n", "lag n", "points", "min R/S", "max R/S",
              "n^0.83");
  for (const auto& [lag, range] : lo_hi) {
    std::printf("  %10zu %10zu %12.1f %12.1f %10.1f\n", lag, count[lag], range.first,
                range.second, std::pow(static_cast<double>(lag), 0.83));
  }

  std::printf("\n  least-squares slope over lags >= %zu:\n", options.fit_min_lag);
  vbrbench::print_paper_vs_measured("H (R/S)", 0.83, result.hurst);
  std::printf("  (stderr %.3f, R^2 = %.3f, %zu pox points)\n", result.fit.slope_stderr,
              result.fit.r_squared, result.points.size());
  std::printf(
      "\n  Shape check: the pox cloud rises along a straight line of slope well\n"
      "  above 0.5 (an SRD record would track n^0.5) and consistent with the\n"
      "  paper's H ~ 0.83.\n");
  return 0;
}
