// bench_stream: throughput of the one-pass streaming estimators, emitted as
// JSON for dashboards/CI.
//
// Pushes a generated model trace through each streaming sink alone and then
// through the full five-sink chain, in engine-sized blocks, and reports
// samples/second. The chain number is the per-sample cost a caller pays for
// tapping the generation engine; StreamingAcf dominates (O(max_lag) per
// sample), which is why its lag window is a parameter here.
//
// Usage:
//   ./bench_stream [samples] [block] [acf_max_lag]
#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstddef>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "vbr/stream/acf.hpp"
#include "vbr/stream/moments.hpp"
#include "vbr/stream/quantiles.hpp"
#include "vbr/stream/sink.hpp"
#include "vbr/stream/variance_time.hpp"
#include "vbr/stream/welch.hpp"

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int len = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (len > 0) out.append(buf, std::min(static_cast<std::size_t>(len), sizeof buf - 1));
}

double time_push(vbr::stream::Sink& sink, std::span<const double> data,
                 std::size_t block) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < data.size(); i += block) {
    sink.push(data.subspan(i, std::min(block, data.size() - i)));
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t samples = (argc > 1) ? std::stoul(argv[1]) : (std::size_t{1} << 21);
  const std::size_t block = (argc > 2) ? std::stoul(argv[2]) : (std::size_t{1} << 16);
  const std::size_t max_lag = (argc > 3) ? std::stoul(argv[3]) : 128;

  const auto& trace = vbrbench::full_trace();
  std::vector<double> data;
  data.reserve(samples);
  const auto& src = trace.frames.values();
  for (std::size_t i = 0; i < samples; ++i) data.push_back(src[i % src.size()]);

  vbr::stream::StreamingMoments moments;
  vbr::stream::StreamingQuantiles quantiles;
  vbr::stream::StreamingAcf acf(max_lag);
  vbr::stream::StreamingVarianceTime vt;
  vbr::stream::StreamingWelchPeriodogram welch;

  std::string json;
  appendf(json, "{\n");
  appendf(json, "  \"benchmark\": \"stream_throughput\",\n");
  appendf(json, "  \"samples\": %zu,\n", samples);
  appendf(json, "  \"block\": %zu,\n", block);
  appendf(json, "  \"acf_max_lag\": %zu,\n", max_lag);
  appendf(json, "  \"contracts\": \"%s\",\n", vbrbench::contracts_state());
  appendf(json, "  \"results\": [\n");

  struct Row {
    const char* name;
    vbr::stream::Sink* sink;
  };
  vbr::stream::SinkChain full =
      vbr::stream::chain(moments, quantiles, acf, vt, welch);
  const std::vector<Row> rows = {
      {"moments", &moments}, {"quantiles", &quantiles}, {"acf", &acf},
      {"variance_time", &vt}, {"welch", &welch},        {"chain_all", &full},
  };
  for (std::size_t i = 0; i < rows.size(); ++i) {
    // chain_all reuses the five already-filled sinks; their results are not
    // read here, so double-filling is harmless and keeps one data pass each.
    vbr::stream::Sink& sink = *rows[i].sink;
    const double seconds = time_push(sink, data, block);
    const double rate = seconds > 0.0 ? static_cast<double>(samples) / seconds : 0.0;
    appendf(json,
            "    {\"sink\": \"%s\", \"wall_seconds\": %.6f, "
            "\"samples_per_second\": %.0f}%s\n",
            rows[i].name, seconds, rate, i + 1 < rows.size() ? "," : "");
    std::fprintf(stderr, "[stream] %-14s %10.3g samples/s\n", rows[i].name, rate);
  }

  appendf(json, "  ]\n");
  appendf(json, "}\n");
  std::fputs(json.c_str(), stdout);
  vbrbench::emit_bench_json("stream_throughput", json);
  return 0;
}
