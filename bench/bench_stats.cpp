// Microbenchmarks for the statistics toolkit on paper-scale inputs: the
// cost of reproducing Section 3 (ACF over 171k frames, periodogram, the
// Hurst estimator battery, distribution fitting). In 1994 this tooling was
// S-plus and Fortran on a workstation; here the full Table-3 battery runs
// in well under a second.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "vbr/common/rng.hpp"
#include "vbr/model/davies_harte.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/stats/dfa.hpp"
#include "vbr/stats/gamma_pareto.hpp"
#include "vbr/stats/periodogram.hpp"
#include "vbr/stats/rs_analysis.hpp"
#include "vbr/stats/variance_time.hpp"
#include "vbr/stats/whittle.hpp"

namespace {

const std::vector<double>& lrd_series(std::size_t n) {
  static std::vector<double> cache;
  if (cache.size() != n) {
    vbr::Rng rng(7);
    vbr::model::DaviesHarteOptions opt;
    opt.hurst = 0.8;
    cache = vbr::model::davies_harte(n, opt, rng);
    for (auto& v : cache) v = 27791.0 + 6254.0 * v;
  }
  return cache;
}

}  // namespace

static void AcfTenThousandLags(benchmark::State& state) {
  const auto& x = lrd_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = vbr::stats::autocorrelation(x, 10000);
    benchmark::DoNotOptimize(r.data());
  }
}
BENCHMARK(AcfTenThousandLags)->Arg(171000);

static void PeriodogramFull(benchmark::State& state) {
  const auto& x = lrd_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto pg = vbr::stats::periodogram(x);
    benchmark::DoNotOptimize(pg.power.data());
  }
}
BENCHMARK(PeriodogramFull)->Arg(171000);

static void VarianceTimePlot(benchmark::State& state) {
  const auto& x = lrd_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto vt = vbr::stats::variance_time(x);
    benchmark::DoNotOptimize(vt.hurst);
  }
}
BENCHMARK(VarianceTimePlot)->Arg(171000);

static void RsPoxAnalysis(benchmark::State& state) {
  const auto& x = lrd_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto rs = vbr::stats::rs_analysis(x);
    benchmark::DoNotOptimize(rs.hurst);
  }
}
BENCHMARK(RsPoxAnalysis)->Arg(171000);

static void WhittleAggregated(benchmark::State& state) {
  const auto& x = lrd_series(static_cast<std::size_t>(state.range(0)));
  std::vector<double> logs(x.begin(), x.end());
  for (auto& v : logs) v = std::log(v);
  const std::vector<std::size_t> levels{700};
  for (auto _ : state) {
    auto w = vbr::stats::whittle_aggregated(logs, levels);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(WhittleAggregated)->Arg(171000);

static void DfaAnalysis(benchmark::State& state) {
  const auto& x = lrd_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = vbr::stats::dfa(x);
    benchmark::DoNotOptimize(result.hurst);
  }
}
BENCHMARK(DfaAnalysis)->Arg(171000);

static void GammaParetoFit(benchmark::State& state) {
  const auto& x = lrd_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto params = vbr::stats::GammaParetoDistribution::fit(x);
    benchmark::DoNotOptimize(params.tail_slope);
  }
}
BENCHMARK(GammaParetoFit)->Arg(171000);

static void ConvolutionTable(benchmark::State& state) {
  vbr::stats::GammaParetoParams params;
  params.mu_gamma = 27791.0;
  params.sigma_gamma = 6254.0;
  params.tail_slope = 12.0;
  const vbr::stats::GammaParetoDistribution d(params);
  const vbr::stats::TabulatedDistribution table(d, 0.0, 120000.0, 10000);
  for (auto _ : state) {
    auto sum = table.convolve_power(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(sum.mean());
  }
}
BENCHMARK(ConvolutionTable)->Arg(5)->Arg(20);
