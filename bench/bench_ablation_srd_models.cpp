// Ablation: classical SRD source models vs the paper's LRD model.
//
// "The use of SRD models when inappropriate will result in overly
// optimistic estimates of performance [and] insufficient allocation of
// resources" (Conclusions). We fit an M-state Markov chain and a DAR(1)
// Gamma/Pareto model — the pre-1994 standard approaches — to the trace,
// then (i) test whether their realizations carry the trace's LRD, and
// (ii) compare the capacity each model demands at a large buffer, where
// long memory dominates.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/model/markov_source.hpp"
#include "vbr/model/tes.hpp"
#include "vbr/model/vbr_source.hpp"
#include "vbr/net/qc_analysis.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/stats/variance_time.hpp"

int main() {
  vbrbench::print_exhibit_header("Ablation (Conclusions)",
                                 "SRD baseline models vs the LRD source model");
  const auto& trace = vbrbench::full_trace();
  const auto frames = trace.frames.samples();

  const auto markov = vbr::model::MarkovChainSource::fit(frames, 16);
  const auto dar = vbr::model::DarGammaParetoSource::fit(frames);
  const auto lrd_model = vbr::model::VbrVideoSourceModel::fit(frames);

  std::printf("\n  fitted baselines: 16-state Markov chain (|lambda_2| = %.3f),\n",
              markov.second_eigenvalue_magnitude());
  std::printf("  DAR(1) with rho = %.3f; LRD model H = %.3f\n", dar.rho(),
              lrd_model.params().hurst);

  // TES baseline [JAGE92]: exact Gamma/Pareto marginals, tunable SRD
  // correlation via the modulo-1 walk; alpha set to roughly match the
  // trace's lag-1 correlation.
  const vbr::model::TesGammaParetoSource tes(lrd_model.params().marginal,
                                             {.alpha = 0.12, .xi = 0.5});

  vbr::Rng rng(31337);
  const auto markov_trace = markov.generate(frames.size(), rng);
  const auto dar_trace = dar.generate(frames.size(), rng);
  const auto tes_trace = tes.generate(frames.size(), rng);
  const auto lrd_trace = lrd_model.generate(frames.size(), rng);

  struct Row {
    const char* label;
    std::span<const double> data;
  };
  const std::vector<Row> rows{{"empirical trace", frames},
                              {"LRD model (full)", lrd_trace},
                              {"Markov chain", markov_trace},
                              {"DAR(1) Gam/Par", dar_trace},
                              {"TES Gam/Par", tes_trace}};

  // (i) Statistical fingerprints.
  std::printf("\n  %-20s %8s %8s %8s %10s\n", "source", "r(1)", "r(100)", "r(2000)",
              "H (VT)");
  for (const auto& row : rows) {
    const auto acf = vbr::stats::autocorrelation(row.data, 2000);
    vbr::stats::VarianceTimeOptions vt;
    vt.fit_min_m = 200;
    const double h = vbr::stats::variance_time(row.data, vt).hurst;
    std::printf("  %-20s %8.3f %8.3f %8.3f %10.3f\n", row.label, acf[1], acf[100],
                acf[2000], h);
  }

  // (ii) Engineering consequence: required capacity at a large buffer.
  std::printf("\n  required capacity (Mb/s), N = 1, P_l = 1e-3:\n");
  std::printf("  %-20s %14s %14s\n", "source", "T_max = 2 ms", "T_max = 1 s");
  std::vector<double> one_second_capacity;
  for (const auto& row : rows) {
    vbr::net::MuxExperiment experiment;
    experiment.sources = 1;
    const vbr::net::MuxWorkload workload(row.data, experiment);
    const double c_small = vbr::net::required_capacity_bps(
        workload, 0.002, 1e-3, vbr::net::QosMeasure::kOverallLoss);
    const double c_large = vbr::net::required_capacity_bps(
        workload, 1.0, 1e-3, vbr::net::QosMeasure::kOverallLoss);
    one_second_capacity.push_back(c_large);
    std::printf("  %-20s %14.3f %14.3f\n", row.label, c_small / 1e6, c_large / 1e6);
  }

  const double optimism_markov = 1.0 - one_second_capacity[2] / one_second_capacity[0];
  const double optimism_dar = 1.0 - one_second_capacity[3] / one_second_capacity[0];
  std::printf(
      "\n  Shape check: the SRD fits match the trace at lag 1 but their\n"
      "  correlations die exponentially (r(2000) ~ 0, H -> 0.5), so with a\n"
      "  1-second buffer they under-provision capacity by %.0f%% (Markov) and\n"
      "  %.0f%% (DAR) relative to the trace -- the 'overly optimistic' failure\n"
      "  mode the paper warns against. The LRD model stays close.\n",
      100.0 * optimism_markov, 100.0 * optimism_dar);
  return 0;
}
