// Figure 17: error processes over the full two-hour interval for N = 1 and
// N = 20, each calibrated to the same overall loss rate P_l = 1e-3 at
// T_max = 2 ms. The running 1000-frame loss rate reveals what the scalar
// P_l hides: the single source loses in rare, severe bursts, the
// 20-source mux in frequent mild events — presumably very different to a
// viewer (the paper's QOS argument, Section 5.3).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/net/qc_analysis.hpp"
#include "vbr/net/qos.hpp"

namespace {

void run_case(std::span<const double> frames, std::size_t sources) {
  vbr::net::MuxExperiment experiment;
  experiment.sources = sources;
  experiment.replications = 1;  // one realization, as plotted in the paper
  const vbr::net::MuxWorkload workload(frames, experiment);

  const double delay = 0.002;
  const double capacity = vbr::net::required_capacity_bps(
      workload, delay, 1e-3, vbr::net::QosMeasure::kOverallLoss);
  const auto detailed = workload.run_detailed(capacity, delay, 0);
  const auto process = vbr::net::windowed_loss_process(detailed.intervals, 1000, 500);

  std::printf("\n  N = %zu: capacity %.3f Mb/s per source, achieved P_l = %.2e\n",
              sources, capacity / 1e6, detailed.loss_rate());

  // Loss-burst anatomy.
  std::size_t windows_with_loss = 0;
  double worst = 0.0;
  for (double rate : process) {
    if (rate > 0.0) ++windows_with_loss;
    worst = std::max(worst, rate);
  }
  std::printf("    1000-frame windows with any loss: %zu / %zu (%.1f%%)\n",
              windows_with_loss, process.size(),
              100.0 * static_cast<double>(windows_with_loss) /
                  static_cast<double>(process.size()));
  std::printf("    worst window loss rate: %.2e (%.0fx the overall P_l)\n", worst,
              worst / 1e-3);

  std::printf("    running loss-rate profile (log scale, '.' = no loss):\n    ");
  const std::size_t cols = 120;
  const std::size_t step = std::max<std::size_t>(1, process.size() / cols);
  for (std::size_t i = 0; i < process.size(); i += step) {
    if (process[i] <= 0.0) {
      std::printf(".");
    } else {
      // Map 1e-6..1e-1 to digits 0..9.
      const double mag = std::clamp((std::log10(process[i]) + 6.0) / 5.0, 0.0, 1.0);
      std::printf("%d", static_cast<int>(mag * 9.0));
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  vbrbench::print_exhibit_header(
      "Figure 17", "running 1000-frame loss rate, N = 1 vs N = 20 at equal P_l");
  const auto& trace = vbrbench::full_trace();
  run_case(trace.frames.samples(), 1);
  run_case(trace.frames.samples(), 20);
  std::printf(
      "\n  Shape check: with identical overall loss, the single source\n"
      "  concentrates its losses in a few severe episodes (high worst-window\n"
      "  rate, few errored windows), while the 20-source mux spreads mild loss\n"
      "  over many windows -- P_l alone does not capture perceived quality.\n");
  return 0;
}
