// Figure 10: self-similarity of VBR video. Aggregating the trace over
// blocks of 100, 500 and 1000 frames leaves processes that retain strong
// fluctuations and look alike; an SRD control (shuffled trace = i.i.d.
// marginals) aggregates to near-white noise with collapsing variance.
#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_support.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/stats/autocorrelation.hpp"

namespace {

struct AggregateSummary {
  std::size_t m;
  double relative_sd;  ///< sd(X^(m)) / sd(X)
  double lag1_acf;
};

AggregateSummary summarize(std::span<const double> data, std::size_t m, double base_sd) {
  const auto blocks = vbr::block_means(data, m);
  AggregateSummary s;
  s.m = m;
  s.relative_sd = std::sqrt(vbr::sample_variance(blocks)) / base_sd;
  s.lag1_acf = vbr::stats::autocorrelation(blocks, 1)[1];
  return s;
}

void print_panel(const char* label, std::span<const double> data, std::size_t m,
                 double mean) {
  const auto blocks = vbr::block_means(data, m);
  std::printf("\n  %s, m = %zu (%zu blocks), first 60 blocks:\n", label, m, blocks.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(60, blocks.size()); ++i) {
    const auto bar = static_cast<int>((blocks[i] / mean - 0.6) * 60.0);
    std::printf("    %s\n",
                std::string(static_cast<std::size_t>(std::clamp(bar, 0, 55)), '#').c_str());
  }
}

}  // namespace

int main() {
  vbrbench::print_exhibit_header("Figure 10",
                                 "aggregated processes X^(m) for m = 100, 500, 1000");
  const auto& trace = vbrbench::full_trace();
  const auto data = trace.frames.samples();
  const double base_sd = std::sqrt(vbr::sample_variance(data));
  const double mean = vbr::sample_mean(data);

  // SRD control: shuffle destroys all time correlation, keeps marginals.
  std::vector<double> shuffled(data.begin(), data.end());
  vbr::Rng rng(99);
  for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
    std::swap(shuffled[i], shuffled[rng.uniform_index(i + 1)]);
  }

  std::printf("\n  %22s %8s %14s %10s\n", "process", "m", "sd(X^m)/sd(X)", "lag-1 r");
  for (std::size_t m : {100u, 500u, 1000u}) {
    const auto video = summarize(data, m, base_sd);
    const auto control = summarize(shuffled, m, base_sd);
    std::printf("  %22s %8zu %14.3f %10.3f\n", "VBR video", video.m, video.relative_sd,
                video.lag1_acf);
    std::printf("  %22s %8zu %14.3f %10.3f\n", "shuffled (SRD control)", control.m,
                control.relative_sd, control.lag1_acf);
    // Self-similar scaling predicts sd ratio m^{H-1}; H = 0.8 -> m^-0.2.
    std::printf("  %22s %8s %14.3f   (m^{H-1}, H=0.8)\n", "ideal self-similar", "",
                std::pow(static_cast<double>(m), -0.2));
  }

  print_panel("VBR video", data, 500, mean);
  print_panel("shuffled control", shuffled, 500, mean);

  std::printf(
      "\n  Shape check: the video's aggregated fluctuations shrink like m^{H-1}\n"
      "  and stay visibly correlated at every m (the three aggregated series\n"
      "  'look alike'), while the shuffled control collapses like m^{-1/2}\n"
      "  toward featureless white noise.\n");
  return 0;
}
