// Figure 9: estimation of the mean bit rate from partial observations.
// Conventional (i.i.d.) 95% confidence intervals shrink like 1/sqrt(n) and
// soon exclude the final mean; LRD-corrected intervals shrink like n^{H-1}
// and keep covering it.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/stats/confidence.hpp"

int main() {
  vbrbench::print_exhibit_header("Figure 9", "mean estimates vs n with 95% CIs");
  const auto& trace = vbrbench::full_trace();
  const auto data = trace.frames.samples();
  const double hurst = 0.8;

  std::vector<std::size_t> ns;
  for (std::size_t n = 1000; n < data.size(); n = n * 3 / 2) ns.push_back(n);
  ns.push_back(data.size());

  const auto points = vbr::stats::running_mean_ci(data, ns, hurst);
  const double final_mean = vbr::sample_mean(data);

  std::printf("\n  final mean over all %zu frames: %.1f bytes/frame\n", data.size(),
              final_mean);
  std::printf("\n  %9s %12s %16s %16s %8s %8s\n", "n", "mean(n)", "iid 95% CI",
              "LRD 95% CI", "iid ok?", "LRD ok?");
  std::size_t iid_misses = 0;
  for (const auto& p : points) {
    const bool iid_ok = std::abs(final_mean - p.mean) <= p.iid_halfwidth;
    const bool lrd_ok = std::abs(final_mean - p.mean) <= p.lrd_halfwidth;
    if (!iid_ok) ++iid_misses;
    std::printf("  %9zu %12.1f  +-%12.1f  +-%12.1f %8s %8s\n", p.n, p.mean,
                p.iid_halfwidth, p.lrd_halfwidth, iid_ok ? "yes" : "NO",
                lrd_ok ? "yes" : "NO");
  }

  const auto coverage = vbr::stats::ci_coverage(points, final_mean);
  std::printf("\n  coverage of the final mean: iid %.0f%%, LRD-corrected %.0f%%\n",
              100.0 * coverage.iid_coverage, 100.0 * coverage.lrd_coverage);
  std::printf(
      "\n  Shape check: the i.i.d. intervals converge much faster than warranted\n"
      "  and miss the final mean for %zu of %zu prefixes, while the LRD-corrected\n"
      "  intervals (wider, shrinking as n^{H-1}) remain honest -- Fig. 9's lesson.\n",
      iid_misses, points.size());
  return 0;
}
