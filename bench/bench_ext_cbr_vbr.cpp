// Extension (Introduction): the CBR vs VBR transport tradeoff.
//
// "Forcing the transmission rate to be constant results in delay, wasted
// bandwidth, and modulation of the video quality." We quantify the first
// two for the trace: the CBR rate needed to meet a smoothing-delay budget
// (and the bandwidth it wastes relative to the mean), against the VBR
// alternative -- statistical multiplexing at 2 ms buffers.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/net/qc_analysis.hpp"
#include "vbr/net/shaper.hpp"

int main() {
  vbrbench::print_exhibit_header("Extension (Sec. 1)", "CBR smoothing vs VBR multiplexing");
  const auto& trace = vbrbench::full_trace();
  const auto frames = trace.frames.samples();
  const double dt = trace.frames.dt_seconds();
  const double mean_rate_mbps = trace.frames.mean_rate_bps() / 1e6;

  std::printf("\n  trace mean rate %.2f Mb/s, peak %.2f Mb/s\n", mean_rate_mbps,
              trace.frames.peak_rate_bps() / 1e6);

  // CBR side: smoothing delay vs constant rate.
  std::printf("\n  CBR transport (single source, lossless smoothing buffer):\n");
  std::printf("  %16s %14s %14s %12s\n", "delay budget", "CBR rate", "vs mean",
              "buffer");
  for (double budget : {0.1, 0.5, 2.0, 10.0, 60.0}) {
    const double rate = vbr::net::min_cbr_rate_for_delay(frames, dt, budget);
    const auto smoothed = vbr::net::smooth_to_cbr(frames, dt, rate);
    std::printf("  %13.1f s %11.2f Mb %13.0f%% %9.1f MB\n", budget, rate * 8.0 / 1e6,
                100.0 * (rate * 8.0 / 1e6 / mean_rate_mbps - 1.0),
                smoothed.max_backlog_bytes / 1e6);
  }

  // VBR side: per-source capacity under multiplexing at a 2 ms buffer.
  std::printf("\n  VBR transport (statistical multiplexing, T_max = 2 ms, P_l = 1e-4):\n");
  std::printf("  %8s %16s %12s\n", "N", "capacity/source", "vs mean");
  for (std::size_t n : {1u, 5u, 20u}) {
    vbr::net::MuxExperiment experiment;
    experiment.sources = n;
    experiment.replications = (n > 2) ? 3 : 1;
    const vbr::net::MuxWorkload workload(frames, experiment);
    const double c = vbr::net::required_capacity_bps(workload, 0.002, 1e-4,
                                                     vbr::net::QosMeasure::kOverallLoss);
    std::printf("  %8zu %13.2f Mb %11.0f%%\n", n, c / 1e6,
                100.0 * (c / 1e6 / mean_rate_mbps - 1.0));
  }

  std::printf(
      "\n  Shape check: a real-time CBR channel must either over-allocate\n"
      "  substantially or impose seconds-to-minutes of smoothing delay (LRD\n"
      "  makes the backlog shrink very slowly with rate), whereas VBR\n"
      "  multiplexing reaches within ~15%% of the mean rate at millisecond\n"
      "  delays once a handful of sources share the link -- the paper's\n"
      "  motivation for VBR video transport.\n");
  return 0;
}
