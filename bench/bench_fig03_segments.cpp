// Figure 3: bandwidth distribution for five two-minute sequences compared
// to the complete trace — short segments deviate significantly from the
// long-term characterization (non-obvious under SRD assumptions, natural
// under LRD).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/stats/descriptive.hpp"

int main() {
  vbrbench::print_exhibit_header("Figure 3",
                                 "bandwidth histograms: 2-minute segments vs full trace");
  const auto& trace = vbrbench::full_trace();
  const auto& values = trace.frames.values();
  const std::size_t n = values.size();
  const std::size_t segment = std::min<std::size_t>(2880, n / 6);  // 2 min at 24 fps

  // Shared binning so the panels are comparable.
  const double lo = 5000.0;
  const double hi = 65000.0;
  const std::size_t bins = 15;

  struct Panel {
    const char* label;
    std::size_t start;
    std::size_t count;
  };
  std::vector<Panel> panels;
  for (int i = 0; i < 5; ++i) {
    const auto start = static_cast<std::size_t>((0.05 + 0.2 * i) * static_cast<double>(n));
    panels.push_back({"2-minute segment", start, segment});
  }
  panels.push_back({"complete trace", 0, n});

  std::vector<double> segment_means;
  for (const auto& panel : panels) {
    const auto slice = std::span<const double>(values).subspan(panel.start, panel.count);
    const auto hist = vbr::stats::make_histogram(slice, bins, lo, hi);
    double mean = 0.0;
    for (double v : slice) mean += v;
    mean /= static_cast<double>(slice.size());
    if (panel.count != n) segment_means.push_back(mean);

    std::printf("\n  %s [frames %zu..%zu), mean %.0f bytes/frame:\n", panel.label,
                panel.start, panel.start + panel.count, mean);
    for (std::size_t b = 0; b < bins; ++b) {
      const double mass = hist.mass(b);
      const auto bar = static_cast<int>(mass * 200.0);
      std::printf("    %6.0f-%6.0f %6.2f%% %.*s\n",
                  hist.lo + hist.bin_width() * static_cast<double>(b),
                  hist.lo + hist.bin_width() * static_cast<double>(b + 1), 100.0 * mass,
                  std::min(bar, 60), "############################################################");
    }
  }

  // Spread of segment means relative to the trace mean: the Fig. 3 message.
  double lo_mean = segment_means[0];
  double hi_mean = segment_means[0];
  for (double m : segment_means) {
    lo_mean = std::min(lo_mean, m);
    hi_mean = std::max(hi_mean, m);
  }
  const double full_mean = trace.frames.summary().mean;
  std::printf(
      "\n  Shape check: two-minute segment means span %.0f..%.0f bytes/frame\n"
      "  (%.0f%% of the long-run mean %.0f) -- 'long' observation windows still\n"
      "  deviate markedly from the stationary distribution, as in the paper.\n",
      lo_mean, hi_mean, 100.0 * (hi_mean - lo_mean) / full_mean, full_mean);
  return 0;
}
