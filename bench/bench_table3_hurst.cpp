// Table 3: estimates of the Hurst parameter H from all methods.
//
// Variance-time, R/S pox analysis (plain, aggregated, and with the lag /
// partition grid varied) and the aggregated Whittle MLE with its 95%
// confidence interval — the paper's values are 0.78 / 0.83 / 0.78 /
// 0.81-0.83 / 0.80 +- 0.088.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/stats/dfa.hpp"
#include "vbr/stats/rs_analysis.hpp"
#include "vbr/stats/variance_time.hpp"
#include "vbr/stats/whittle.hpp"

int main() {
  vbrbench::print_exhibit_header("Table 3", "estimates of H from all methods");
  const auto& trace = vbrbench::full_trace();
  const auto data = trace.frames.samples();

  std::printf("\n  %-26s %12s %10s\n", "Method", "H", "paper");

  vbr::stats::VarianceTimeOptions vt_opt;
  vt_opt.fit_min_m = 200;  // the paper measures from ~200 frames upward
  const auto vt = vbr::stats::variance_time(data, vt_opt);
  std::printf("  %-26s %12.3f %10.2f\n", "Variance-Time", vt.hurst, 0.78);

  vbr::stats::RsOptions rs_opt;
  rs_opt.fit_min_lag = 200;
  const auto rs = vbr::stats::rs_analysis(data, rs_opt);
  std::printf("  %-26s %12.3f %10.2f\n", "R/S Analysis", rs.hurst, 0.83);

  const auto rs_agg = vbr::stats::rs_analysis_aggregated(data, 10, rs_opt);
  std::printf("  %-26s %12.3f %10.2f\n", "R/S Aggregated (m=10)", rs_agg.hurst, 0.78);

  const std::vector<std::size_t> lag_grid{20, 30, 40};
  const std::vector<std::size_t> part_grid{5, 10, 15};
  const auto sweep = vbr::stats::rs_sweep(data, lag_grid, part_grid, rs_opt);
  std::printf("  %-26s %7.2f-%.2f %10s\n", "R/S with n, M varied", sweep.hurst_min,
              sweep.hurst_max, "0.81-0.83");

  // Whittle on log data, combined with aggregation (paper: read at m ~ 700).
  const auto logs = vbrbench::log_values(data);
  std::vector<std::size_t> levels;
  for (std::size_t m : {100u, 300u, 700u, 1200u}) {
    if (data.size() / m >= 64) levels.push_back(m);
  }
  const auto whittle = vbr::stats::whittle_aggregated(logs, levels);
  for (const auto& point : whittle) {
    std::printf("  Whittle (m=%-6zu)        %6.3f +- %.3f%s\n", point.m,
                point.result.hurst, 1.96 * point.result.stderr_hurst,
                point.m == 700 ? "   paper: 0.80 +- 0.088" : "");
  }

  // Extension: Robinson's semiparametric local Whittle (model-free about
  // the short-range spectrum; not in the paper but standard today). The
  // bandwidth sweep shows the classic bias-variance tradeoff: small m uses
  // only truly long-range frequencies, large m drags in the scene band.
  for (std::size_t m : {100u, 400u, 1600u}) {
    const auto local = vbr::stats::local_whittle_estimate(logs, m);
    std::printf("  Local Whittle m=%-9zu %6.3f +- %.3f%s\n", m, local.hurst,
                1.96 * local.stderr_hurst,
                m == 100 ? "   (ext.; lowest-frequency band)" : "");
  }

  // Extension: DFA-1 (Peng et al. 1994), trend-robust.
  vbr::stats::DfaOptions dfa_opt;
  dfa_opt.fit_min_box = 200;
  const auto dfa_result = vbr::stats::dfa(data, dfa_opt);
  std::printf("  %-26s %6.3f  (ext.; R^2 = %.3f)\n", "DFA-1", dfa_result.hurst,
              dfa_result.fit.r_squared);

  std::printf(
      "\n  Shape check: all methods agree on clear long-range dependence with\n"
      "  H clustered near 0.8, well away from the SRD value 0.5.\n");
  return 0;
}
