// Microbenchmarks (google-benchmark) for the traffic generators.
//
// Quantifies Section 4.1's cost remark: Hosking's exact recursion is
// O(n^2) — the paper reports ~10 hours for 171,000 points on a 1990s
// workstation — while Davies-Harte circulant embedding generates the same
// process in O(n log n). Also measures the Eq. (13) marginal transform and
// a full fluid-queue simulation pass.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "vbr/model/davies_harte.hpp"
#include "vbr/model/hosking.hpp"
#include "vbr/model/marginal_transform.hpp"
#include "vbr/model/vbr_source.hpp"
#include "vbr/net/fluid_queue.hpp"
#include "vbr/stats/gamma_pareto.hpp"

static void HoskingFarima(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  vbr::model::HoskingOptions options;
  options.hurst = 0.8;
  vbr::Rng rng(1);
  for (auto _ : state) {
    auto x = vbr::model::hosking_farima(n, options, rng);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(HoskingFarima)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

static void DaviesHarteFgn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  vbr::model::DaviesHarteOptions options;
  options.hurst = 0.8;
  vbr::Rng rng(2);
  for (auto _ : state) {
    auto x = vbr::model::davies_harte(n, options, rng);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(DaviesHarteFgn)->RangeMultiplier(4)->Range(256, 262144)->Complexity();

static void MarginalTransform(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  vbr::stats::GammaParetoParams params;
  params.mu_gamma = 27791.0;
  params.sigma_gamma = 6254.0;
  params.tail_slope = 12.0;
  const vbr::stats::GammaParetoDistribution target(params);
  const vbr::model::TabulatedMarginalMap map(target);
  vbr::Rng rng(3);
  std::vector<double> gaussian(n);
  for (auto& v : gaussian) v = rng.normal();
  for (auto _ : state) {
    auto y = map.apply(gaussian);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(MarginalTransform)->Range(4096, 262144);

static void FullModelGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  vbr::model::VbrModelParams params;
  params.marginal.mu_gamma = 27791.0;
  params.marginal.sigma_gamma = 6254.0;
  params.marginal.tail_slope = 12.0;
  params.hurst = 0.8;
  const vbr::model::VbrVideoSourceModel model(params);
  vbr::Rng rng(4);
  for (auto _ : state) {
    auto x = model.generate(n, rng);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(FullModelGeneration)->Range(4096, 262144);

static void FluidQueuePass(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  vbr::Rng rng(5);
  std::vector<double> arrivals(n);
  for (auto& v : arrivals) v = std::max(0.0, rng.normal(27791.0, 6254.0));
  const double capacity = 27791.0 * 24.0 * 1.2;
  for (auto _ : state) {
    auto result = vbr::net::run_fluid_queue(arrivals, 1.0 / 24.0, capacity, capacity * 0.002);
    benchmark::DoNotOptimize(result.lost_bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(FluidQueuePass)->Range(16384, 262144);
