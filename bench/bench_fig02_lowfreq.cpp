// Figure 2: low-frequency content of the VBR video process — a moving
// average with a 20,000-frame (~14 min) window, revealing the story-arc
// modulation the paper reads as accessible evidence of LRD.
#include <algorithm>
#include <cstdio>

#include "bench_support.hpp"
#include "vbr/trace/aggregate.hpp"

int main() {
  vbrbench::print_exhibit_header("Figure 2", "low-frequency content (20,000-frame MA)");
  const auto& trace = vbrbench::full_trace();
  const std::size_t window = std::min<std::size_t>(20000, trace.frames.size() / 4);
  const auto smooth = vbr::trace::moving_average(trace.frames.samples(), window);

  const std::size_t rows = 100;
  const std::size_t step = std::max<std::size_t>(1, smooth.size() / rows);
  const double mean = trace.frames.summary().mean;

  std::printf("\n  window = %zu frames (%.1f minutes)\n", window,
              static_cast<double>(window) * trace.frames.dt_seconds() / 60.0);
  std::printf("  %10s %12s %9s  %s\n", "time (min)", "MA bytes/frm", "vs mean", "profile");
  double lo = 1e18;
  double hi = 0.0;
  for (std::size_t i = 0; i < smooth.size(); i += step) {
    lo = std::min(lo, smooth[i]);
    hi = std::max(hi, smooth[i]);
  }
  for (std::size_t i = 0; i < smooth.size(); i += step) {
    const double rel = smooth[i] / mean;
    const auto bar =
        static_cast<int>((smooth[i] - lo) / std::max(1e-9, hi - lo) * 50.0);
    std::printf("  %10.1f %12.0f %8.1f%%  %.*s\n",
                static_cast<double>(i) * trace.frames.dt_seconds() / 60.0, smooth[i],
                100.0 * (rel - 1.0), std::clamp(bar, 0, 50),
                "##################################################");
  }
  std::printf(
      "\n  Shape check: the moving average swings %.0f..%.0f (%.0f%% of the mean),\n"
      "  tracing a story arc -- active opening, placid second quarter, build-up,\n"
      "  climactic finale -- rather than flattening to the mean as SRD would.\n",
      lo, hi, 100.0 * (hi - lo) / mean);
  return 0;
}
