// Extension (Sec. 2 / [GARR93a]): interframe coding.
//
// The paper codes intraframe and notes that interframe (MPEG-style) coding
// yields "greater compression, burstiness and much stronger dependence on
// motion". We run the same synthetic movie through both coders and compare
// compression, burstiness, GoP structure and motion sensitivity.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/codec/interframe_coder.hpp"
#include "vbr/codec/intraframe_coder.hpp"
#include "vbr/codec/synthetic_movie.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/stats/autocorrelation.hpp"

int main() {
  vbrbench::print_exhibit_header("Extension (Sec. 2)",
                                 "interframe (I/P) vs intraframe coding");
  vbr::codec::MovieConfig config;
  config.width = 128;
  config.height = 128;
  // Mild film grain: temporal noise is the one component interframe coding
  // cannot predict, so heavy grain would mask the compression advantage.
  config.grain = 0.08;
  const std::size_t frames = 720;  // 30 seconds
  const vbr::codec::SyntheticMovie movie(config, frames);

  vbr::codec::IntraframeCoder intra;
  vbr::codec::InterframeConfig inter_config;
  inter_config.gop_length = 12;
  vbr::codec::InterframeCoder inter(inter_config);

  std::vector<double> intra_bytes;
  std::vector<double> inter_bytes;
  std::vector<double> p_frame_bytes;
  std::vector<double> i_frame_bytes;
  for (std::size_t f = 0; f < frames; ++f) {
    const auto frame = movie.frame(f);
    intra_bytes.push_back(static_cast<double>(intra.encode(frame).total_bytes()));
    const auto encoded = inter.encode_next(frame);
    inter_bytes.push_back(static_cast<double>(encoded.total_bytes()));
    (encoded.is_intra ? i_frame_bytes : p_frame_bytes).push_back(inter_bytes.back());
  }

  auto burstiness = [](const std::vector<double>& xs) {
    return *std::max_element(xs.begin(), xs.end()) / vbr::sample_mean(xs);
  };
  auto cov = [](const std::vector<double>& xs) {
    return std::sqrt(vbr::sample_variance(xs)) / vbr::sample_mean(xs);
  };

  std::printf("\n  %-22s %12s %12s\n", "metric", "intraframe", "interframe");
  std::printf("  %-22s %12.0f %12.0f\n", "mean bytes/frame", vbr::sample_mean(intra_bytes),
              vbr::sample_mean(inter_bytes));
  std::printf("  %-22s %12.2f %12.2f\n", "compression vs intra", 1.0,
              vbr::sample_mean(intra_bytes) / vbr::sample_mean(inter_bytes));
  std::printf("  %-22s %12.2f %12.2f\n", "peak/mean", burstiness(intra_bytes),
              burstiness(inter_bytes));
  std::printf("  %-22s %12.2f %12.2f\n", "coef. of variation", cov(intra_bytes),
              cov(inter_bytes));
  std::printf("\n  GoP anatomy (gop = 12): %zu I frames, mean %.0f bytes;"
              " %zu P frames, mean %.0f bytes (ratio %.1fx)\n",
              i_frame_bytes.size(), vbr::sample_mean(i_frame_bytes), p_frame_bytes.size(),
              vbr::sample_mean(p_frame_bytes),
              vbr::sample_mean(i_frame_bytes) / vbr::sample_mean(p_frame_bytes));

  // Change dependence: a P frame that lands on a scene cut must code a
  // whole new picture as residual; within a shot it codes only pan + grain.
  double steady_sum = 0.0;
  double cut_sum = 0.0;
  std::size_t steady_n = 0;
  std::size_t cut_n = 0;
  {
    vbr::codec::InterframeCoder probe(inter_config);
    for (std::size_t f = 0; f < frames; ++f) {
      const auto encoded = probe.encode_next(movie.frame(f));
      if (encoded.is_intra) continue;
      const bool at_cut = movie.scene_at(f).start_frame == f;
      if (at_cut) {
        cut_sum += static_cast<double>(encoded.total_bytes());
        ++cut_n;
      } else {
        steady_sum += static_cast<double>(encoded.total_bytes());
        ++steady_n;
      }
    }
  }
  if (steady_n > 0 && cut_n > 0) {
    std::printf("\n  change dependence of P frames: within-shot %.0f bytes,"
                " at scene cuts %.0f bytes (%.1fx) over %zu cuts\n",
                steady_sum / static_cast<double>(steady_n),
                cut_sum / static_cast<double>(cut_n),
                (cut_sum / static_cast<double>(cut_n)) /
                    (steady_sum / static_cast<double>(steady_n)),
                cut_n);
  }

  const auto acf = vbr::stats::autocorrelation(inter_bytes, 24);
  std::printf("\n  interframe trace ACF shows the GoP period: r(11)=%.2f r(12)=%.2f r(13)=%.2f\n",
              acf[11], acf[12], acf[13]);

  std::printf(
      "\n  Shape check: interframe coding compresses harder, is burstier\n"
      "  (I-frame spikes over a P-frame floor; CoV and peak/mean well above\n"
      "  the intraframe trace), shows the 12-frame GoP periodicity in its\n"
      "  ACF, and its P-frame cost jumps at picture changes -- the 'much\n"
      "  stronger dependence on motion' the paper attributes to interframe\n"
      "  coding.\n");
  return 0;
}
