// bench_generator_pareto: map the generator zoo onto the speed/fidelity
// Pareto front, emitted as JSON for dashboards/CI.
//
// Every registered generator (fgn_generator.hpp) is measured on four axes:
//
//   * throughput — median-of-k cold-cache generation time for one 2^17-frame
//     source (every process-wide cache — Davies-Harte eigenvalues, Paxson
//     spectrum, fast-FFT twiddle plans — is dropped before each rep, and the
//     reps of all generators are interleaved so slow drift in a noisy
//     container biases no one); warm-cache medians ride along
//   * Hurst fidelity — Whittle H-hat at H in {0.6, 0.75, 0.9}, each judged
//     under the generator's own covariance family (farima_covariance())
//   * marginal — Kolmogorov-Smirnov distance of the raw output against a
//     zero-mean Normal at the sample's own scale
//   * ACF — RMS error over lags 1..64 against the family's exact ACF
//
// all through stats/lrd_fidelity.hpp, i.e. the repo's own estimators.
// Hosking is exact but O(n^2), so it is timed and judged at a reduced
// length (recorded in the JSON) rather than dropped.
//
// At full scale (frames >= 2^17) two acceptance constraints are ENFORCED
// with a nonzero exit: Paxson must beat exact Davies-Harte by >= 5x on the
// cold-cache median, and Paxson's Whittle H-hat must stay within +/- 0.04 of
// the target at all three H values. Reduced smoke runs (smaller argv sizes)
// skip enforcement but still emit the full JSON shape.
//
// Usage:
//   ./bench_generator_pareto [frames] [reps] [fidelity_frames]
// Defaults: 131072 frames, 15 reps, 65536 fidelity frames.
#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "vbr/common/fft_fast.hpp"
#include "vbr/model/davies_harte.hpp"
#include "vbr/model/fgn_acf.hpp"
#include "vbr/model/fgn_generator.hpp"
#include "vbr/model/paxson_fgn.hpp"
#include "vbr/stats/lrd_fidelity.hpp"

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int len = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (len > 0) out.append(buf, std::min(static_cast<std::size_t>(len), sizeof buf - 1));
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

void drop_all_caches() {
  vbr::model::davies_harte_cache_clear();
  vbr::model::paxson_spectrum_cache_clear();
  vbr::fast_fft_plan_cache_clear();
}

struct FidelityRow {
  double target = 0.0;
  vbr::stats::LrdFidelityReport report;
};

struct GeneratorRecord {
  std::string name;
  bool exact = false;
  bool farima = false;
  std::size_t timing_frames = 0;
  std::size_t fidelity_frames = 0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  std::vector<FidelityRow> fidelity;
  double max_whittle_error = 0.0;
  double max_gaussian_ks = 0.0;
  double max_acf_rms = 0.0;
  bool pareto_optimal = true;
};

/// a dominates b: no worse on every axis, strictly better on at least one.
bool dominates(const GeneratorRecord& a, const GeneratorRecord& b) {
  const double ax[4] = {a.cold_ms * static_cast<double>(b.timing_frames) /
                            static_cast<double>(a.timing_frames),
                        a.max_whittle_error, a.max_gaussian_ks, a.max_acf_rms};
  const double bx[4] = {b.cold_ms, b.max_whittle_error, b.max_gaussian_ks, b.max_acf_rms};
  bool strictly = false;
  for (int i = 0; i < 4; ++i) {
    if (ax[i] > bx[i]) return false;
    if (ax[i] < bx[i]) strictly = true;
  }
  return strictly;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t frames = (argc > 1) ? std::strtoull(argv[1], nullptr, 10) : 131072;
  const std::size_t reps = (argc > 2) ? std::strtoull(argv[2], nullptr, 10) : 15;
  const std::size_t fidelity_frames =
      (argc > 3) ? std::strtoull(argv[3], nullptr, 10) : 65536;
  // Hosking's O(n^2) recursion would take minutes at 2^17; judge it at a
  // reduced, recorded length instead of dropping the only O(n^2)-exact
  // reference from the front.
  const std::size_t hosking_cap = 8192;
  const bool enforce = frames >= 131072;
  const double timing_hurst = 0.8;
  const std::vector<double> targets = {0.6, 0.75, 0.9};
  constexpr double kWhittleTolerance = 0.04;
  constexpr double kMinPaxsonSpeedup = 5.0;

  vbrbench::print_exhibit_header(
      "Generator Pareto", "speed vs fidelity front over the fGn generator zoo");

  std::vector<GeneratorRecord> records;
  for (const auto& name : vbr::model::fgn_generator_names()) {
    GeneratorRecord rec;
    rec.name = name;
    const auto probe = vbr::model::make_fgn_generator(name, timing_hurst);
    rec.exact = probe->exact();
    rec.farima = probe->farima_covariance();
    rec.timing_frames = name == "hosking" ? std::min(frames, hosking_cap) : frames;
    rec.fidelity_frames =
        name == "hosking" ? std::min(fidelity_frames, hosking_cap) : fidelity_frames;
    records.push_back(std::move(rec));
  }

  // Timing: all generators' rep r runs back-to-back before any rep r+1, so
  // machine-load drift hits every generator equally instead of whichever
  // one happened to run last.
  std::vector<std::vector<double>> cold(records.size()), warm(records.size());
  for (std::size_t r = 0; r < reps; ++r) {
    for (std::size_t g = 0; g < records.size(); ++g) {
      const auto gen = vbr::model::make_fgn_generator(records[g].name, timing_hurst);
      drop_all_caches();
      vbr::Rng rng(0x9e3779b9 + r * 131 + g);
      const auto t0 = std::chrono::steady_clock::now();
      auto x = gen->generate(records[g].timing_frames, rng);
      const auto t1 = std::chrono::steady_clock::now();
      if (x.empty()) return EXIT_FAILURE;  // keep the generation observable
      cold[g].push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
  }
  for (std::size_t r = 0; r < reps; ++r) {
    for (std::size_t g = 0; g < records.size(); ++g) {
      const auto gen = vbr::model::make_fgn_generator(records[g].name, timing_hurst);
      vbr::Rng rng(0x51ed2701 + r * 131 + g);
      if (r == 0) (void)gen->generate(records[g].timing_frames, rng);  // prime caches
      const auto t0 = std::chrono::steady_clock::now();
      auto x = gen->generate(records[g].timing_frames, rng);
      const auto t1 = std::chrono::steady_clock::now();
      if (x.empty()) return EXIT_FAILURE;
      warm[g].push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
  }
  for (std::size_t g = 0; g < records.size(); ++g) {
    records[g].cold_ms = median(cold[g]);
    records[g].warm_ms = median(warm[g]);
  }

  // Fidelity: one realization per (generator, H), judged under the
  // generator's own covariance family.
  for (auto& rec : records) {
    for (const double target : targets) {
      const auto gen = vbr::model::make_fgn_generator(rec.name, target);
      vbr::Rng rng(1994 + static_cast<std::uint64_t>(target * 1000));
      const auto x = gen->generate(rec.fidelity_frames, rng);
      vbr::stats::LrdFidelityOptions options;
      options.spectral_model = rec.farima ? vbr::stats::SpectralModel::kFarima
                                          : vbr::stats::SpectralModel::kFgn;
      const auto acf = rec.farima ? vbr::model::farima_acf(target, options.acf_lags)
                                  : vbr::model::fgn_acf(target, options.acf_lags);
      FidelityRow row;
      row.target = target;
      row.report = vbr::stats::judge_lrd_fidelity(x, target, acf, options);
      rec.max_whittle_error = std::max(rec.max_whittle_error, row.report.whittle_error);
      rec.max_gaussian_ks = std::max(rec.max_gaussian_ks, row.report.gaussian_ks);
      rec.max_acf_rms = std::max(rec.max_acf_rms, row.report.acf_rms_error);
      rec.fidelity.push_back(row);
    }
  }

  for (auto& rec : records) {
    for (const auto& other : records) {
      if (&other != &rec && dominates(other, rec)) rec.pareto_optimal = false;
    }
  }

  std::printf("\n  %-13s %10s %10s %8s %8s %8s %7s\n", "generator", "cold ms",
              "warm ms", "maxdH", "maxKS", "maxACF", "pareto");
  for (const auto& rec : records) {
    std::printf("  %-13s %10.3f %10.3f %8.4f %8.4f %8.4f %7s\n", rec.name.c_str(),
                rec.cold_ms, rec.warm_ms, rec.max_whittle_error, rec.max_gaussian_ks,
                rec.max_acf_rms, rec.pareto_optimal ? "yes" : "no");
  }

  const auto find = [&](const char* name) -> const GeneratorRecord& {
    for (const auto& rec : records) {
      if (rec.name == name) return rec;
    }
    std::fprintf(stderr, "generator %s missing from registry\n", name);
    std::exit(EXIT_FAILURE);
  };
  const GeneratorRecord& dh = find("davies-harte");
  const GeneratorRecord& paxson = find("paxson");
  const double speedup = paxson.cold_ms > 0.0 ? dh.cold_ms / paxson.cold_ms : 0.0;
  const bool speedup_ok = speedup >= kMinPaxsonSpeedup;
  const bool whittle_ok = paxson.max_whittle_error <= kWhittleTolerance;
  std::printf("\n  paxson vs davies-harte cold speedup: %.2fx (need >= %.1fx)%s\n",
              speedup, kMinPaxsonSpeedup,
              enforce ? "" : "  [not enforced at reduced scale]");
  std::printf("  paxson max |H-hat - H|: %.4f (need <= %.2f)\n", paxson.max_whittle_error,
              kWhittleTolerance);

  std::string json = "{\n";
  appendf(json, "  \"bench\": \"generator_pareto\",\n");
  appendf(json, "  \"contracts\": \"%s\",\n", vbrbench::contracts_state());
  appendf(json, "  \"frames\": %zu,\n  \"reps\": %zu,\n  \"fidelity_frames\": %zu,\n",
          frames, reps, fidelity_frames);
  appendf(json, "  \"timing_hurst\": %.2f,\n", timing_hurst);
  appendf(json, "  \"generators\": [\n");
  for (std::size_t g = 0; g < records.size(); ++g) {
    const auto& rec = records[g];
    appendf(json, "    {\"name\": \"%s\", \"exact\": %s, \"covariance\": \"%s\",\n",
            rec.name.c_str(), rec.exact ? "true" : "false",
            rec.farima ? "farima" : "fgn");
    appendf(json,
            "     \"timing_frames\": %zu, \"fidelity_frames\": %zu,\n"
            "     \"cold_ms_median\": %.4f, \"warm_ms_median\": %.4f,\n"
            "     \"frames_per_second_cold\": %.0f,\n",
            rec.timing_frames, rec.fidelity_frames, rec.cold_ms, rec.warm_ms,
            1000.0 * static_cast<double>(rec.timing_frames) / rec.cold_ms);
    appendf(json, "     \"fidelity\": [\n");
    for (std::size_t i = 0; i < rec.fidelity.size(); ++i) {
      const auto& row = rec.fidelity[i];
      appendf(json,
              "       {\"target_hurst\": %.2f, \"whittle_hurst\": %.4f, "
              "\"vt_hurst\": %.4f, \"gaussian_ks\": %.5f, \"acf_rms_error\": %.5f, "
              "\"sample_variance\": %.4f}%s\n",
              row.target, row.report.whittle_hurst, row.report.vt_hurst,
              row.report.gaussian_ks, row.report.acf_rms_error,
              row.report.sample_variance, i + 1 < rec.fidelity.size() ? "," : "");
    }
    appendf(json, "     ],\n");
    appendf(json,
            "     \"max_whittle_error\": %.4f, \"max_gaussian_ks\": %.5f, "
            "\"max_acf_rms_error\": %.5f, \"pareto_optimal\": %s}%s\n",
            rec.max_whittle_error, rec.max_gaussian_ks, rec.max_acf_rms,
            rec.pareto_optimal ? "true" : "false",
            g + 1 < records.size() ? "," : "");
  }
  appendf(json, "  ],\n");
  appendf(json,
          "  \"constraints\": {\"enforced\": %s, \"paxson_speedup_min\": %.1f, "
          "\"paxson_cold_speedup\": %.3f, \"paxson_speedup_ok\": %s, "
          "\"whittle_tolerance\": %.2f, \"paxson_whittle_ok\": %s}\n",
          enforce ? "true" : "false", kMinPaxsonSpeedup, speedup,
          speedup_ok ? "true" : "false", kWhittleTolerance,
          whittle_ok ? "true" : "false");
  appendf(json, "}\n");
  std::fputs(json.c_str(), stdout);
  vbrbench::emit_bench_json("generator_pareto", json);

  if (enforce && !(speedup_ok && whittle_ok)) {
    std::fprintf(stderr, "FAIL: Pareto acceptance constraints violated\n");
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
