// Extension (Sec. 4.2): connection admission control from the Gamma/Pareto
// convolution table.
//
// The paper built a 10,000-point tabulated convolution of the Gamma/Pareto
// marginal "to simulate the aggregation of multiple sources". This driver
// uses it as an analytic admission controller for a bufferless multiplexer
// and cross-checks it against the trace-driven simulation at the
// small-buffer knee: marginals govern there (buffers too small for time
// correlation to matter), so the analytic and simulated capacities should
// agree — and both should show the Fig. 15 economy of scale.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/net/admission.hpp"
#include "vbr/net/qc_analysis.hpp"
#include "vbr/stats/gamma_pareto.hpp"

int main() {
  vbrbench::print_exhibit_header("Extension (Sec. 4.2)",
                                 "bufferless admission from the convolution table");
  const auto& trace = vbrbench::full_trace();
  const auto frames = trace.frames.samples();
  const double dt = trace.frames.dt_seconds();

  const vbr::stats::GammaParetoDistribution marginal(
      vbr::stats::GammaParetoDistribution::fit(frames));
  const vbr::net::BufferlessAdmission admission(marginal, dt, 10000);

  const double target = 1e-4;
  std::printf("\n  target loss fraction %.0e, 10,000-point table\n", target);
  std::printf("\n  %6s %22s %22s\n", "N", "analytic C/N (Mb/s)", "simulated C/N (Mb/s)");
  for (std::size_t n : {1u, 2u, 5u, 10u, 20u}) {
    const double analytic =
        admission.required_capacity_bps(n, target) / static_cast<double>(n);

    vbr::net::MuxExperiment experiment;
    experiment.sources = n;
    experiment.replications = (n > 2) ? 3 : 1;
    const vbr::net::MuxWorkload workload(frames, experiment);
    // Tiny buffer (0.2 ms): the marginal-dominated regime.
    const double simulated = vbr::net::required_capacity_bps(
        workload, 0.0002, target, vbr::net::QosMeasure::kOverallLoss);
    std::printf("  %6zu %22.3f %22.3f\n", n, analytic / 1e6, simulated / 1e6);
  }

  // Admission view: how many sources fit on typical pipes?
  std::printf("\n  admissible sources at target %.0e:\n", target);
  std::printf("  %16s %10s %16s\n", "link (Mb/s)", "N admit", "utilization");
  const double mean_bps = marginal.mean() * 8.0 / dt;
  for (double link_mbps : {10.0, 25.0, 45.0, 100.0, 155.0}) {
    const auto admitted =
        admission.max_admissible_sources(link_mbps * 1e6, target, 64);
    std::printf("  %16.0f %10zu %15.0f%%\n", link_mbps, admitted,
                100.0 * static_cast<double>(admitted) * mean_bps / (link_mbps * 1e6));
  }

  std::printf(
      "\n  Shape check: the analytic capacities track the tiny-buffer simulated\n"
      "  ones within a few percent (the convolution captures exactly what\n"
      "  matters when buffers cannot smooth), per-source capacity falls with N,\n"
      "  and link utilization climbs toward 100%% on large pipes -- the paper's\n"
      "  multiplexing-gain story as a connection-admission rule.\n");
  return 0;
}
