// Figure 8: periodogram (empirical power spectral density) of the frame
// data — the low-frequency end grows without bound like w^-alpha instead of
// flattening, the frequency-domain definition of LRD.
#include <cmath>
#include <cstdio>

#include "bench_support.hpp"
#include "vbr/stats/periodogram.hpp"

int main() {
  vbrbench::print_exhibit_header("Figure 8", "periodogram of the frame data");
  const auto& trace = vbrbench::full_trace();
  const auto pg = vbr::stats::periodogram(trace.frames.samples());
  const auto binned = vbr::stats::log_binned(pg, 30);

  std::printf("\n  %14s %14s %12s\n", "freq (rad)", "freq (Hz)", "power");
  const double fps = 1.0 / trace.frames.dt_seconds();
  for (std::size_t i = 0; i < binned.frequency.size(); ++i) {
    std::printf("  %14.6f %14.6f %12.4e\n", binned.frequency[i],
                binned.frequency[i] * fps / (2.0 * M_PI), binned.power[i]);
  }

  const double alpha = vbr::stats::low_frequency_slope(pg, 0.05);
  std::printf("\n  low-frequency power law: I(w) ~ w^-%.3f  ->  H = (1+alpha)/2 = %.3f\n",
              alpha, (1.0 + alpha) / 2.0);

  const double low = binned.power.front();
  const double mid = binned.power[binned.power.size() / 2];
  std::printf(
      "\n  Shape check: power grows monotonically toward zero frequency\n"
      "  (lowest bin %.2e vs mid-band %.2e, a factor of %.0f) rather than\n"
      "  approaching a finite limit -- LRD by the spectral definition.\n",
      low, mid, low / mid);
  return 0;
}
