// Section 4.2 closure experiment: "The realizations were tested and found
// to agree with the model parameters, both in marginal distribution and the
// value of H." Generate from the fitted model, re-estimate all four
// parameters, and quantify the tabulated transform's tail behavior (the
// Section 5.2 caveat about the extreme Pareto tail).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "vbr/model/marginal_transform.hpp"
#include "vbr/model/model_validation.hpp"
#include "vbr/model/vbr_source.hpp"
#include "vbr/stats/descriptive.hpp"

int main() {
  vbrbench::print_exhibit_header("Model validation (Sec. 4.2)",
                                 "generate -> re-fit closure + tail fidelity");
  const auto& trace = vbrbench::full_trace();
  const auto model = vbr::model::VbrVideoSourceModel::fit(trace.frames.samples());

  vbr::Rng rng(424242);
  const auto report =
      vbr::model::validate_model(model, trace.frames.size(), rng);
  std::printf("\n  %-18s %12s %12s %10s\n", "parameter", "input", "re-fitted",
              "rel.err");
  std::printf("  %-18s %12.0f %12.0f %9.1f%%\n", "mu_Gamma",
              report.input.marginal.mu_gamma, report.refit.marginal.mu_gamma,
              100.0 * report.mean_rel_error);
  std::printf("  %-18s %12.0f %12.0f %9.1f%%\n", "sigma_Gamma",
              report.input.marginal.sigma_gamma, report.refit.marginal.sigma_gamma,
              100.0 * report.sigma_rel_error);
  std::printf("  %-18s %12.2f %12.2f %9.1f%%\n", "m_T (tail slope)",
              report.input.marginal.tail_slope, report.refit.marginal.tail_slope,
              100.0 * report.tail_slope_rel_error);
  std::printf("  %-18s %12.3f %12.3f %9.3f (abs)\n", "H", report.input.hurst,
              report.refit.hurst, report.hurst_abs_error);
  std::printf("  agreement within (20%% marginal, 0.1 H): %s\n",
              report.agrees(0.2, 0.1) ? "yes" : "NO");

  // Section 5.2: does the realization hold the Pareto tail? Compare the
  // realization's extreme quantiles against the model law.
  vbr::Rng rng2(7);
  const auto realization = model.generate(trace.frames.size(), rng2);
  std::vector<double> sorted(realization.begin(), realization.end());
  std::sort(sorted.begin(), sorted.end());
  const auto& marginal = model.marginal();
  std::printf("\n  extreme-quantile fidelity (realization vs model law):\n");
  std::printf("  %12s %14s %14s %10s\n", "quantile", "realization", "model", "ratio");
  for (double q : {0.99, 0.999, 0.9999, 0.99999}) {
    const double emp = sorted[static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1))];
    const double law = marginal.quantile(q);
    std::printf("  %12g %14.0f %14.0f %10.3f\n", q, emp, law, emp / law);
  }
  std::printf(
      "\n  Shape check: the re-fitted parameters close on the inputs, and the\n"
      "  realization carries the Pareto tail out to the 1e-5 quantile (the\n"
      "  deep tail is noisy in any single realization -- the paper's point\n"
      "  about missing confidence-interval theory for LRD processes).\n");
  return 0;
}
